"""Pluggable invariant checkers over kernel and scheduler state.

The checkers encode what must hold *regardless of policy* — properties the
goldens can only sample but a fuzzer can hammer:

* **clock monotonicity** — simulation time never moves backwards across
  dispatches (observed at every slot event and application finish);
* **slot occupancy conservation** — at every stable point, the number of
  non-idle slots of each kind equals the slots the live ``AppRun`` s think
  they have committed (``used_big`` / ``used_little``);
* **incremental counters == recomputed counts** — the O(1) run-state
  maintained by ``schedulers.runtime`` (unfinished tasks/bundles, used
  slots) and the utilization tracker's in-place accumulators must always
  equal a from-scratch recomputation;
* **no orphaned waiters** — when a run ends, no process is still parked on
  a pipeline item event, no PR plan sits in the queue, and the engine heap
  is empty;
* **resource request/release balance** — every acquired core / PCAP unit
  was released (``in_use == 0`` at drain, never outside ``[0, capacity]``).

:class:`InvariantMonitor` attaches the runtime checks to a live
simulation (slot observers + finish listeners) and exposes
:meth:`InvariantMonitor.finalize` for the end-of-run sweep.  All findings
are collected as :class:`Violation` records instead of raising, so the
oracle can report every broken invariant of a run at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..fpga.bitstream import SlotKind
from ..fpga.board import FPGABoard
from ..fpga.slots import SlotState
from ..schedulers.base import OnBoardScheduler
from ..schedulers.runtime import AppRun, BundleRun, TaskRun
from ..sim import Engine

#: Tolerance for comparing incrementally maintained float accumulators
#: against a from-scratch recomputation.
FLOAT_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant, timestamped with the simulation clock."""

    time_ms: float
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[t={self.time_ms:.3f}] {self.invariant}: {self.detail}"


# ---------------------------------------------------------------------------
# Stateless checkers (callable on any live or finished simulation)
# ---------------------------------------------------------------------------


def check_app_run(app: AppRun) -> List[str]:
    """Incremental run-state of one application vs recomputation."""
    problems: List[str] = []
    batch = app.batch
    spec = app.spec
    for index, done in enumerate(app.done_counts):
        if not (0 <= done <= batch):
            problems.append(
                f"{app.inst.name}: task {index} done_count {done} "
                f"outside [0, {batch}]"
            )
    recomputed_tasks = sum(1 for done in app.done_counts if done < batch)
    if app.unfinished_task_count() != recomputed_tasks:
        problems.append(
            f"{app.inst.name}: incremental unfinished tasks "
            f"{app.unfinished_task_count()} != recomputed {recomputed_tasks}"
        )
    left = app._bundle_members_left
    if left is not None:
        recomputed_bundles = 0
        for bundle_index, bundle in enumerate(spec.bundles):
            members_left = sum(
                1 for t in bundle.task_indices if app.done_counts[t] < batch
            )
            if left[bundle_index] != members_left:
                problems.append(
                    f"{app.inst.name}: bundle {bundle_index} members-left "
                    f"{left[bundle_index]} != recomputed {members_left}"
                )
            if members_left:
                recomputed_bundles += 1
        if app.unfinished_bundle_count() != recomputed_bundles:
            problems.append(
                f"{app.inst.name}: incremental unfinished bundles "
                f"{app.unfinished_bundle_count()} != recomputed "
                f"{recomputed_bundles}"
            )
    bundle_names = {bundle.name for bundle in spec.bundles}
    loaded_big = sum(1 for run in app.loaded.values() if isinstance(run, BundleRun))
    loaded_little = sum(1 for run in app.loaded.values() if isinstance(run, TaskRun))
    pending_big = sum(1 for name in app.pending_pr if name in bundle_names)
    pending_little = len(app.pending_pr) - pending_big
    if app.used_big != loaded_big + pending_big:
        problems.append(
            f"{app.inst.name}: used_big {app.used_big} != loaded "
            f"{loaded_big} + pending {pending_big}"
        )
    if app.used_little != loaded_little + pending_little:
        problems.append(
            f"{app.inst.name}: used_little {app.used_little} != loaded "
            f"{loaded_little} + pending {pending_little}"
        )
    if app.finished:
        if not app.all_done:
            problems.append(f"{app.inst.name}: finished but not all done")
        if app.finish_time is None:
            problems.append(f"{app.inst.name}: finished without a finish time")
        if app.loaded or app.pending_pr:
            problems.append(
                f"{app.inst.name}: finished with runs still loaded/pending"
            )
    return problems


def check_scheduler(scheduler: OnBoardScheduler) -> List[str]:
    """Stable-point consistency of one scheduler's aggregate state."""
    problems: List[str] = []
    stats = scheduler.stats
    if stats.completions != len(stats.responses):
        problems.append(
            f"completions counter {stats.completions} != response records "
            f"{len(stats.responses)}"
        )
    if stats.completions > stats.arrivals:
        problems.append(
            f"more completions ({stats.completions}) than arrivals "
            f"({stats.arrivals})"
        )
    for app in scheduler.apps:
        problems.extend(check_app_run(app))
        membership = sum(
            app in queue
            for queue in (scheduler.c_wait, scheduler.s_big, scheduler.s_little)
        )
        if app.finished and membership:
            problems.append(f"{app.inst.name}: finished but still queued")
        if membership > 1:
            problems.append(f"{app.inst.name}: present in {membership} queues")
    # Slot occupancy conservation: what the fabric shows committed must
    # equal what the live apps believe they hold.
    board = scheduler.board
    busy_big = busy_little = 0
    for slot in board.slots:
        if slot.state is not SlotState.IDLE:
            if slot.kind is SlotKind.BIG:
                busy_big += 1
            else:
                busy_little += 1
    committed_big = scheduler.committed_big()
    committed_little = scheduler.committed_little()
    if busy_big != committed_big:
        problems.append(
            f"slot conservation: {busy_big} busy Big slots vs "
            f"{committed_big} committed"
        )
    if busy_little != committed_little:
        problems.append(
            f"slot conservation: {busy_little} busy Little slots vs "
            f"{committed_little} committed"
        )
    if committed_big > scheduler.big_total:
        problems.append(
            f"committed Big slots {committed_big} exceed fabric "
            f"{scheduler.big_total}"
        )
    if committed_little > scheduler.little_total:
        problems.append(
            f"committed Little slots {committed_little} exceed fabric "
            f"{scheduler.little_total}"
        )
    return problems


def check_resources(board: FPGABoard) -> List[str]:
    """Runtime bounds on every shared resource of one board."""
    problems: List[str] = []
    resources = [core for core in board.ps.cores]
    resources.append(board.pcap._port)
    for resource in resources:
        if not (0 <= resource.in_use <= resource.capacity):
            problems.append(
                f"resource {resource.name!r}: in_use {resource.in_use} "
                f"outside [0, {resource.capacity}]"
            )
        fraction = resource.busy_fraction()
        if not (-FLOAT_TOLERANCE <= fraction <= 1.0 + FLOAT_TOLERANCE):
            problems.append(
                f"resource {resource.name!r}: busy fraction {fraction} "
                f"outside [0, 1]"
            )
        if resource.abandon_misses:
            problems.append(
                f"resource {resource.name!r}: {resource.abandon_misses} "
                "cancel(s) for requests the resource was not holding"
            )
    return problems


def check_quiescent(engine: Engine, scheduler) -> List[str]:
    """End-of-run balance: a drained simulation holds nothing back.

    Valid only once the run has drained — the event heap must be empty,
    every core and the PCAP port released, no PR plan queued, and no
    process still parked on a pipeline item event (orphaned waiter).
    """
    problems: List[str] = []
    pending = engine.pending_count()
    if pending:
        problems.append(f"{pending} events left in the queue after drain")
    board = scheduler.board
    for resource in [*board.ps.cores, board.pcap._port]:
        if resource.in_use != 0:
            problems.append(
                f"resource {resource.name!r}: {resource.in_use} units never "
                "released (acquire/release imbalance)"
            )
        if resource.queue_length:
            problems.append(
                f"resource {resource.name!r}: {resource.queue_length} "
                "requests still waiting"
            )
    if isinstance(scheduler, OnBoardScheduler):
        if len(scheduler.pr_queue):
            problems.append(
                f"{len(scheduler.pr_queue)} PR plans still queued after drain"
            )
        for app in scheduler.apps:
            for task_index, events in app._item_events.items():
                for item, event in events.items():
                    if event._fast_process is not None or event.callbacks:
                        problems.append(
                            f"{app.inst.name}: orphaned waiter on task "
                            f"{task_index} item {item}"
                        )
    return problems


def check_tracker(tracker, board: FPGABoard) -> List[str]:
    """Utilization tracker's incremental accumulators vs recomputation."""
    problems: List[str] = []
    recomputed_lut = recomputed_ff = 0.0
    for index, occupancy in tracker._current.items():
        recomputed_lut += occupancy.usage.lut
        recomputed_ff += occupancy.usage.ff
        slot = board.slots[index]
        if slot.state is not SlotState.LOADED:
            problems.append(
                f"tracker holds occupancy for slot {slot.name} "
                f"in state {slot.state.value}"
            )
    if abs(tracker._cur_usage_lut - recomputed_lut) > FLOAT_TOLERANCE:
        problems.append(
            f"tracker incremental LUT usage {tracker._cur_usage_lut} != "
            f"recomputed {recomputed_lut}"
        )
    if abs(tracker._cur_usage_ff - recomputed_ff) > FLOAT_TOLERANCE:
        problems.append(
            f"tracker incremental FF usage {tracker._cur_usage_ff} != "
            f"recomputed {recomputed_ff}"
        )
    loaded = sum(1 for slot in board.slots if slot.state is SlotState.LOADED)
    if len(tracker._current) != loaded:
        problems.append(
            f"tracker sees {len(tracker._current)} occupied slots, "
            f"board has {loaded} loaded"
        )
    return problems


def check_serving_plan(plan, arrivals) -> List[Violation]:
    """No-lost-requests audit of a supervised serving plan.

    Every input arrival must carry exactly one terminal disposition
    (served exactly once on a shard that was SERVING at admission, or
    explicitly shed inside a degraded window); the final per-shard
    streams must contain exactly the served requests, time-sorted; and
    the typed shed/reroute events must reconcile with the ledger.
    Violations are collected, never raised, so the oracle can report
    every broken guarantee of a plan at once.
    """
    violations: List[Violation] = []

    def note(time_ms: float, invariant: str, detail: str) -> None:
        violations.append(Violation(time_ms, invariant, detail))

    def state_at(history, time_ms: float) -> str:
        state = history[0][1] if history else "?"
        for at_ms, to_state, _ in history:
            if at_ms > time_ms:
                break
            state = to_state
        return state

    arrivals = list(arrivals)
    if len(plan.ledger) != len(arrivals):
        note(
            0.0, "no-lost-requests",
            f"ledger has {len(plan.ledger)} records for "
            f"{len(arrivals)} arrivals",
        )
        return violations

    served_by_shard: dict = {}
    for record, arrival in zip(plan.ledger, arrivals):
        if (record.app, record.batch, record.submitted_ms) != (
            arrival.app_name, arrival.batch_size, arrival.time_ms
        ):
            note(
                record.submitted_ms, "no-lost-requests",
                f"request {record.seq}: ledger identity "
                f"({record.app}, {record.batch}, {record.submitted_ms}) "
                f"!= arrival ({arrival.app_name}, {arrival.batch_size}, "
                f"{arrival.time_ms})",
            )
        if record.disposition == "served":
            if not 0 <= record.shard < plan.n_shards:
                note(
                    record.time_ms, "no-lost-requests",
                    f"request {record.seq} served on shard {record.shard} "
                    f"outside [0, {plan.n_shards})",
                )
                continue
            if record.time_ms < record.submitted_ms:
                note(
                    record.time_ms, "no-lost-requests",
                    f"request {record.seq} admitted at {record.time_ms} "
                    f"before submission at {record.submitted_ms}",
                )
            history = plan.histories.get(record.shard, [])
            state = state_at(history, record.time_ms)
            if state != "serving":
                note(
                    record.time_ms, "serving-state",
                    f"request {record.seq} admitted to shard "
                    f"{record.shard} in state {state!r} at "
                    f"t={record.time_ms:g}",
                )
            served_by_shard.setdefault(record.shard, []).append(record)
        elif record.disposition == "shed":
            if not record.shed_reason:
                note(
                    record.time_ms, "shed-policy",
                    f"request {record.seq} shed without a reason",
                )
            inside = any(
                start <= record.time_ms and (end is None or record.time_ms < end)
                for start, end in plan.shed_windows
            )
            if not inside:
                note(
                    record.time_ms, "shed-policy",
                    f"request {record.seq} shed ({record.shed_reason}) at "
                    f"t={record.time_ms:g} outside every degraded window",
                )
        else:
            note(
                record.submitted_ms, "no-lost-requests",
                f"request {record.seq} has no terminal disposition "
                f"(got {record.disposition!r})",
            )

    # Streams contain exactly the served requests, time-sorted.
    for shard, stream in enumerate(plan.streams):
        times = [arrival.time_ms for arrival in stream]
        if times != sorted(times):
            note(
                times[0] if times else 0.0, "stream-consistency",
                f"shard {shard} stream is not time-sorted",
            )
        expected = sorted(
            (r.time_ms, r.app, r.batch)
            for r in served_by_shard.get(shard, [])
        )
        got = sorted(
            (a.time_ms, a.app_name, a.batch_size) for a in stream
        )
        if expected != got:
            note(
                0.0, "stream-consistency",
                f"shard {shard} stream holds {len(got)} requests but the "
                f"ledger served {len(expected)} there (or identities "
                "differ)",
            )

    # Typed events reconcile with the ledger.
    shed_events = sum(1 for e in plan.events if e.kind == "shed")
    reroute_events = sum(1 for e in plan.events if e.kind == "reroute")
    shed_records = sum(1 for r in plan.ledger if r.disposition == "shed")
    hops = sum(len(r.rerouted_from) for r in plan.ledger)
    shed_after_reroute = sum(
        1 for r in plan.ledger
        if r.disposition == "shed" and r.rerouted_from
    )
    if shed_events != shed_records:
        note(
            0.0, "event-ledger",
            f"{shed_events} shed events vs {shed_records} shed ledger "
            "records",
        )
    if reroute_events != hops - shed_after_reroute:
        note(
            0.0, "event-ledger",
            f"{reroute_events} reroute events vs "
            f"{hops - shed_after_reroute} successful reroute hops in the "
            "ledger",
        )
    return violations


# ---------------------------------------------------------------------------
# The live monitor
# ---------------------------------------------------------------------------


class InvariantMonitor:
    """Attach the checkers to a running simulation.

    Construction subscribes to every slot's observers (clock monotonicity
    on each fabric event) and — for :class:`OnBoardScheduler` systems — to
    the finish listeners, where the full stable-point sweep runs.  Call
    :meth:`finalize` after ``engine.run`` returns for the end-of-run
    balance checks.  Violations accumulate in :attr:`violations`.
    """

    def __init__(
        self,
        engine: Engine,
        board: FPGABoard,
        scheduler,
        tracker=None,
    ) -> None:
        self.engine = engine
        self.board = board
        self.scheduler = scheduler
        self.tracker = tracker
        self.violations: List[Violation] = []
        self._last_time = engine.now
        self._finalized = False
        for slot in board.slots:
            slot.observers.append(self._on_slot_event)
        if isinstance(scheduler, OnBoardScheduler):
            scheduler.finish_listeners.append(self._on_finish)

    # ------------------------------------------------------------------
    def _note(self, invariant: str, problems: List[str]) -> None:
        now = self.engine.now
        for detail in problems:
            self.violations.append(Violation(now, invariant, detail))

    def _check_clock(self, source: str) -> None:
        now = self.engine.now
        if now < self._last_time:
            self.violations.append(
                Violation(
                    now,
                    "clock-monotonicity",
                    f"{source} at t={now} after t={self._last_time}",
                )
            )
        self._last_time = max(self._last_time, now)

    def _on_slot_event(self, slot, occupancy) -> None:
        self._check_clock(f"slot {slot.name} event")

    def _on_finish(self, scheduler, app_run) -> None:
        self._check_clock(f"finish of {app_run.inst.name}")
        self.check_now()

    # ------------------------------------------------------------------
    def check_now(self) -> List[Violation]:
        """Run the stable-point sweep against the current state."""
        before = len(self.violations)
        if isinstance(self.scheduler, OnBoardScheduler):
            self._note("run-state", check_scheduler(self.scheduler))
        self._note("resource-balance", check_resources(self.board))
        if self.tracker is not None:
            self._note("utilization-tracker", check_tracker(self.tracker, self.board))
        return self.violations[before:]

    def finalize(self, drained: bool = True) -> List[Violation]:
        """End-of-run sweep; ``drained=False`` skips the quiescence checks."""
        if self._finalized:
            return self.violations
        self._finalized = True
        self.check_now()
        if drained:
            self._note("quiescence", check_quiescent(self.engine, self.scheduler))
        return self.violations
