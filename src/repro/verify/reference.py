"""The reference kernel: the event loop with every shortcut removed.

:class:`ReferenceEngine` implements exactly the semantics documented in
``repro.sim`` — time-ordered dispatch, FIFO among same-time events, the
fast process (first waiter) resuming before listed callbacks — using the
obvious pop/dispatch loop.  None of the optimized kernel's machinery is
active here:

* no manually inlined dispatch loop (``Engine._dispatch`` runs per event);
* no inlined ``Process._resume`` fast lane (the plain method is called);
* no pooled sleeps (``sleep`` returns a fresh, classically constructed
  :class:`Timeout`, so nothing is ever recycled);
* no flattened constructors on the engine-owned factories.

Model code drives both kernels through the identical ``Engine`` API, so
the differential oracle can run any scenario on each and demand
bit-identical traces.  The reference loop is the *specification*: when the
kernels disagree, the optimized kernel is the suspect.

Sequence numbers are consumed identically on both kernels (one per
scheduled entry), which the oracle relies on only indirectly — the
comparison is over observable traces and statistics, never over engine
internals.
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, Callable, Dict, Optional

from ..sim.engine import Engine
from ..sim.events import Timeout
from ..sim.wheel import WheelEngine


class ReferenceEngine(Engine):
    """Slow-but-obvious :class:`Engine`: one dispatch call per event."""

    __slots__ = ()

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A fresh timeout via the plain constructor (no inlining)."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Timeout:
        """Same as :meth:`timeout`: the reference kernel never pools.

        Model loops that ``yield engine.sleep(...)`` (or a bare delay,
        which ``Process._resume`` routes through here) therefore allocate
        one timeout per iteration — exactly the cost the optimized
        kernel's free list removes, with identical observable behaviour.
        """
        return Timeout(self, delay, value)

    def run(self, until: Optional[float] = None) -> None:
        """The textbook loop: peek, pop, dispatch, repeat."""
        if until is not None and until < self.now:
            raise ValueError(f"until ({until}) is in the past (now={self.now})")
        horizon = float("inf") if until is None else until
        heap = self._heap
        while heap:
            if heap[0][0] > horizon:
                break
            when, _, _, event = heappop(heap)
            self.now = when
            self._dispatch(event)
        if until is not None and until > self.now:
            self.now = until


#: Named kernels the campaign/verify layers can run a scenario on.
#: ``heap`` is an alias for ``optimized`` (the heapq-calendar kernel), so
#: bench/verify invocations can say ``--compare wheel,heap`` and mean the
#: backend by its data structure rather than its history.  ``default``
#: names whatever kernel production entry points use when no ``--kernel``
#: is given — currently the wheel — so campaign snapshots and CLI flags
#: stay meaningful if the default ever moves again.
KERNELS: Dict[str, Callable[[], Engine]] = {
    "default": WheelEngine,
    "optimized": Engine,
    "heap": Engine,
    "wheel": WheelEngine,
    "reference": ReferenceEngine,
}


def resolve_kernel(name: str) -> Callable[[], Engine]:
    """Engine factory for a kernel name; KeyError names the alternatives."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(KERNELS)}"
        ) from None
