"""Correctness infrastructure: differential oracle, invariants, fuzzing.

PR 2 made the kernel fast and pinned it to a handful of hand-captured
goldens; this package turns that snapshot into a *generator*.  Four pieces
compose:

* :mod:`repro.verify.reference` — :class:`ReferenceEngine`, a deliberately
  simple event loop implementing the documented ``sim/`` semantics with
  none of the hot-path shortcuts (no inlined fast lane, no pooled sleeps).
* :mod:`repro.verify.oracle` — runs the same seeded scenario on both
  kernels and asserts bit-identical traces, response records and
  utilization aggregates.
* :mod:`repro.verify.invariants` — pluggable checkers over ``Engine`` /
  ``AppRun`` state: clock monotonicity, slot-occupancy conservation,
  resource request/release balance, incremental counters == recomputed.
* :mod:`repro.verify.fuzz` — a property-based scenario fuzzer sampling
  random workloads and parameters through the campaign registry, with
  failing cases shrunk and persisted as replayable JSON repros.

The CLI entry point is ``python -m repro verify [--fuzz N] [--seed S]``.
"""

from .fuzz import (
    FuzzCase,
    REPRO_KIND,
    ScenarioFuzzer,
    cases_from_fleet_scenario,
    cases_from_scenario,
    is_repro_payload,
    load_repro,
    parse_repro_payload,
    replay_case,
    replay_repro,
    save_repro,
    shrink_case,
)
from .invariants import InvariantMonitor, Violation
from .oracle import (
    DifferentialOracle,
    DivergenceReport,
    KernelFingerprint,
    instrumented_run,
    trace_lines,
)
from .reference import KERNELS, ReferenceEngine, resolve_kernel

__all__ = [
    "DifferentialOracle",
    "DivergenceReport",
    "FuzzCase",
    "InvariantMonitor",
    "KERNELS",
    "KernelFingerprint",
    "REPRO_KIND",
    "ReferenceEngine",
    "ScenarioFuzzer",
    "Violation",
    "cases_from_fleet_scenario",
    "cases_from_scenario",
    "instrumented_run",
    "is_repro_payload",
    "load_repro",
    "parse_repro_payload",
    "replay_case",
    "replay_repro",
    "resolve_kernel",
    "save_repro",
    "shrink_case",
    "trace_lines",
]
