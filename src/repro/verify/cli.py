"""The ``repro verify`` command: oracle sweeps and fuzz campaigns.

Two modes share the machinery:

* **scenario sweep** (default) — every (system × sequence × seed) cell of
  one registered scenario is run through the differential oracle;
* **fuzz** (``--fuzz N``) — N property-based cases sampled from the
  campaign registry under a root ``--seed``.

A failing case is shrunk and persisted under ``--repro-dir`` as a JSON
repro replayable with ``python -m repro campaign replay <file>``; the
command exits non-zero if any case diverged or broke an invariant.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from ..campaign.scenario import SYSTEM_REGISTRY, get_scenario
from ..fleet import FLEET_SCENARIOS, get_fleet_scenario
from .fuzz import (
    FuzzCase,
    ScenarioFuzzer,
    cases_from_fleet_scenario,
    cases_from_scenario,
    save_repro,
    shrink_case,
)
from .oracle import DifferentialOracle, DivergenceReport
from .reference import KERNELS

#: Candidate kernels the default sweep compares against the reference:
#: the bucketed timing-wheel kernel (first: it is the production default,
#: so it is the candidate-of-record a report's headline numbers cite) and
#: the optimized heap kernel.
DEFAULT_KERNELS = ("wheel", "optimized")


def add_verify_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fuzz", type=int, default=None, metavar="N",
        help="fuzz N sampled cases instead of sweeping a scenario's cells",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="fault-aware fuzzing: sample only fleet deployments and "
             "inject a deterministic fault schedule (shard kills, drains, "
             "degradation, latency skew) into every case",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="root seed of the fuzz sampler (default: 0)",
    )
    parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="registered scenario to sweep (default: smoke), or to restrict "
             "fuzzing to",
    )
    parser.add_argument(
        "--system", action="append", default=None, metavar="NAME",
        help="restrict checking to this system (repeatable)",
    )
    parser.add_argument(
        "--repro-dir", default="results/repros", metavar="DIR",
        help="directory failing cases are persisted under "
             "(default: results/repros)",
    )
    parser.add_argument(
        "--max-shrink", type=int, default=48, metavar="N",
        help="oracle-run budget for shrinking one failing case (default: 48)",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="check every case even after a failure (default: stop at first)",
    )
    parser.add_argument(
        "--kernel", action="append", default=None, metavar="NAME",
        help="candidate kernel to diff against the reference (repeatable; "
             f"default: {' and '.join(DEFAULT_KERNELS)})",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="audit a durable event store instead of sweeping: check "
             "notification-log shape, snapshot consistency, and that every "
             "persisted incremental projection equals a full rebuild",
    )


def _check_case(oracle: DifferentialOracle, case: FuzzCase) -> DivergenceReport:
    report = oracle.check(case.system, case.arrivals(), case.params())
    # Faulted fleet cases additionally audit the serving plan: losing a
    # request is a failure even when every kernel agrees bit-for-bit.
    report.plan_violations = case.plan_violations()
    return report


def _handle_failure(
    oracle: DifferentialOracle,
    case: FuzzCase,
    report: DivergenceReport,
    repro_dir: str,
    max_shrink: int,
) -> Path:
    """Shrink a failing case, persist the repro, and narrate both."""
    print(report.summary(), file=sys.stderr)

    def still_fails(candidate: FuzzCase) -> bool:
        return not _check_case(oracle, candidate).ok

    shrunk, attempts = shrink_case(case, still_fails, budget=max_shrink)
    final_report = report if shrunk == case else _check_case(oracle, shrunk)
    path = Path(repro_dir) / f"repro-{shrunk.scenario}-{shrunk.case_id}.json"
    save_repro(path, shrunk, final_report)
    print(
        f"shrunk to: {shrunk.describe()} ({attempts} shrink runs)\n"
        f"repro persisted: {path}\n"
        f"replay with: python -m repro campaign replay {path}",
        file=sys.stderr,
    )
    return path


def _run_store_audit(path: str) -> int:
    from .oracle import check_store

    if not Path(path).exists():
        print(f"error: store {path} does not exist", file=sys.stderr)
        return 2
    try:
        findings = check_store(path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if findings:
        print(f"verify: store {path}: {len(findings)} finding(s)")
        for finding in findings:
            print(f"  FAIL {finding}", file=sys.stderr)
        return 1
    print(
        f"verify: store {path}: notification log dense, snapshots "
        "consistent, all projections equal a full rebuild"
    )
    return 0


def run_verify_command(args: argparse.Namespace) -> int:
    if getattr(args, "store", None):
        return _run_store_audit(args.store)
    kernels = tuple(args.kernel) if getattr(args, "kernel", None) else DEFAULT_KERNELS
    bad_kernels = [
        name for name in kernels if name == "reference" or name not in KERNELS
    ]
    if bad_kernels:
        candidates = ", ".join(name for name in KERNELS if name != "reference")
        print(
            f"error: invalid candidate kernel(s) {', '.join(bad_kernels)}; "
            f"the reference is always the baseline — pick from: {candidates}",
            file=sys.stderr,
        )
        return 2
    oracle = DifferentialOracle(kernels=kernels)
    unknown_systems = [
        name for name in (args.system or ()) if name not in SYSTEM_REGISTRY
    ]
    if unknown_systems:
        print(
            f"error: unknown system(s) {', '.join(unknown_systems)}; "
            f"available: {', '.join(SYSTEM_REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    chaos = bool(getattr(args, "chaos", False))
    if args.fuzz is not None:
        if args.fuzz < 1:
            print(f"error: --fuzz must be >= 1, got {args.fuzz}", file=sys.stderr)
            return 2
        try:
            fuzzer = ScenarioFuzzer(
                args.seed, scenario=args.scenario, systems=args.system,
                chaos=chaos,
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        cases: List[FuzzCase] = list(fuzzer.cases(args.fuzz))
        banner = (
            f"{'chaos-' if chaos else ''}fuzzing {len(cases)} cases "
            f"(seed {args.seed})"
        )
    elif chaos:
        print("error: --chaos requires --fuzz N", file=sys.stderr)
        return 2
    else:
        name = args.scenario or "smoke"
        try:
            if name in FLEET_SCENARIOS:
                scenario = get_fleet_scenario(name)
                cases = cases_from_fleet_scenario(scenario)
            else:
                scenario = get_scenario(name)
                cases = cases_from_scenario(scenario)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        if args.system:
            chosen = set(args.system)
            cases = [case for case in cases if case.system in chosen]
            if not cases:
                # A green gate that checked nothing is worse than a red one.
                print(
                    f"error: scenario {scenario.name!r} has no cells for "
                    f"system(s) {', '.join(sorted(chosen))} "
                    f"(it evaluates: {', '.join(scenario.system_names())})",
                    file=sys.stderr,
                )
                return 2
        banner = f"sweeping scenario {scenario.name!r}: {len(cases)} cells"
    print(f"verify: {banner}; reference vs {' vs '.join(kernels)} kernel")

    failures = 0
    checked = 0
    for case in cases:
        report = _check_case(oracle, case)
        checked += 1
        if report.ok:
            print(
                f"  ok   {case.describe()} "
                f"({report.optimized.trace_len} trace records)"
            )
            continue
        failures += 1
        print(f"  FAIL {case.describe()}")
        _handle_failure(oracle, case, report, args.repro_dir, args.max_shrink)
        if not args.keep_going:
            break
    if failures:
        print(
            f"verify: {failures} failing case(s) out of {checked} checked",
            file=sys.stderr,
        )
        return 1
    print(f"verify: all {len(cases)} cases bit-identical across kernels")
    return 0
