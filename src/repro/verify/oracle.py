"""The differential oracle: one scenario, two kernels, zero divergence.

:func:`instrumented_run` executes a (system, arrivals, parameters) cell on
a chosen kernel with full observability attached — structured tracing, the
time-weighted utilization tracker, and the invariant monitor — and
condenses the run into a :class:`KernelFingerprint`.  The fingerprint
captures everything model code can observe: the canonical trace, response
records with finish times, scheduler counters, PCAP statistics and the
utilization aggregates.

:class:`DifferentialOracle` runs the same cell on the reference kernel and
on each *candidate* kernel (by default just the optimized heap kernel; the
CLI sweeps heap and wheel together) and diffs the fingerprints field by
field.  Floats are compared *exactly*: the kernels are required to be
bit-identical, not just statistically close — any reordering of same-time
events shows up as a trace divergence long before it shifts an aggregate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..campaign.backend import DEFAULT_HORIZON_MS, DrainError, simulate_run
from ..campaign.results import COUNTER_FIELDS
from ..config import SystemParameters
from ..metrics.utilization import UtilizationTracker
from ..sim import Engine, Tracer
from ..telemetry import FingerprintSink, TelemetryBus
from ..workloads.generator import Arrival
from .invariants import InvariantMonitor
from .reference import ReferenceEngine, resolve_kernel


def trace_lines(tracer: Tracer) -> List[str]:
    """Canonical one-line-per-record rendering of a trace.

    Matches the format the PR-2 goldens pinned (time to 9 decimals,
    category, payload JSON with sorted keys) so fingerprints and goldens
    stay directly comparable.
    """
    return [
        f"{record.time:.9f}|{record.category}|"
        f"{json.dumps(record.payload, sort_keys=True, default=str)}"
        for record in tracer.records
    ]


@dataclass
class KernelFingerprint:
    """Everything observable about one instrumented simulation run."""

    kernel: str
    system: str
    drained: bool
    error: Optional[str]
    completions: int
    makespan_ms: float
    counters: Dict[str, float]
    response_times_ms: List[float]
    finish_times_ms: List[float]
    trace_len: int
    trace_sha256: str
    occupied_utilization: Tuple[float, float]
    fabric_utilization: Tuple[float, float]
    pcap_loads: int
    pcap_retries: int
    #: Typed telemetry stream condensation (the fingerprint sink): event
    #: count and SHA-256 over the canonical event lines.  Any divergence
    #: in emission order or payload between kernels surfaces here even if
    #: no other aggregate moves.
    telemetry_events: int = 0
    telemetry_sha256: str = ""
    violations: List[str] = field(default_factory=list)
    #: Full canonical trace, kept for diff context (compared via the sha).
    trace: List[str] = field(default_factory=list, repr=False)

    #: Fields diffed between kernels ("trace" is covered by its digest,
    #: "violations" are reported per-kernel rather than diffed).
    COMPARED = (
        "drained",
        "error",
        "completions",
        "makespan_ms",
        "counters",
        "response_times_ms",
        "finish_times_ms",
        "trace_len",
        "trace_sha256",
        "occupied_utilization",
        "fabric_utilization",
        "pcap_loads",
        "pcap_retries",
        "telemetry_events",
        "telemetry_sha256",
    )

    def comparable(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self.COMPARED}


def instrumented_run(
    system: str,
    arrivals: Sequence[Arrival],
    params: Optional[SystemParameters] = None,
    kernel: str = "optimized",
    engine_factory: Optional[Callable[[], Engine]] = None,
    horizon_ms: float = DEFAULT_HORIZON_MS,
) -> KernelFingerprint:
    """Run one cell on ``kernel`` with full observability attached.

    ``engine_factory`` overrides the registry lookup (tests inject
    deliberately broken kernels this way); ``kernel`` then only labels the
    fingerprint.  Simulation failures — drain timeouts, model crashes —
    are captured into the fingerprint instead of raised, so the oracle can
    compare *how* both kernels failed.
    """
    factory = engine_factory if engine_factory is not None else resolve_kernel(kernel)
    tracer = Tracer()
    # The telemetry spine carries the oracle's response/finish plumbing:
    # the fingerprint sink consumes the typed event stream the model
    # emits, replacing direct reads of ``SchedulerStats.responses``.
    telemetry = TelemetryBus()
    fingerprint_sink = FingerprintSink()
    telemetry.attach(fingerprint_sink)
    refs: Dict[str, object] = {}

    def capture(engine, board, scheduler) -> None:
        refs["engine"] = engine
        refs["board"] = board
        refs["scheduler"] = scheduler
        refs["tracker"] = UtilizationTracker(board)
        refs["monitor"] = InvariantMonitor(
            engine, board, scheduler, tracker=refs["tracker"]
        )

    error: Optional[str] = None
    drained = True
    makespan = 0.0
    try:
        outcome = simulate_run(
            system,
            arrivals,
            params,
            horizon_ms=horizon_ms,
            engine_factory=factory,
            tracer=tracer,
            instruments=(capture,),
            telemetry=telemetry,
        )
        makespan = outcome.makespan_ms
    except DrainError as exc:
        drained = False
        error = (
            f"DrainError: {exc.completions}/{exc.expected} drained; "
            f"undrained: {', '.join(exc.undrained)}"
        )
    except Exception as exc:  # noqa: BLE001 - the failure *is* the result
        if "scheduler" not in refs:
            # The simulation never got assembled (unknown system, invalid
            # parameters): that is an operator error, not a kernel
            # outcome — there is nothing to fingerprint, so propagate.
            raise
        drained = False
        error = f"{type(exc).__name__}: {exc}"

    scheduler = refs["scheduler"]
    tracker: UtilizationTracker = refs["tracker"]  # type: ignore[assignment]
    monitor: InvariantMonitor = refs["monitor"]  # type: ignore[assignment]
    board = refs["board"]
    stats = scheduler.stats
    if error is not None:
        makespan = max(
            fingerprint_sink.finish_times_ms,
            default=refs["engine"].now,  # type: ignore[union-attr]
        )
    monitor.finalize(drained=drained and error is None)
    lines = trace_lines(tracer)
    occupied = tracker.mean_occupied_utilization()
    fabric = tracker.mean_fabric_utilization()
    return KernelFingerprint(
        kernel=kernel,
        system=system,
        drained=drained,
        error=error,
        completions=fingerprint_sink.completions,
        makespan_ms=makespan,
        counters={name: getattr(stats, name) for name in COUNTER_FIELDS},
        response_times_ms=list(fingerprint_sink.response_times_ms),
        finish_times_ms=list(fingerprint_sink.finish_times_ms),
        trace_len=len(lines),
        trace_sha256=hashlib.sha256("\n".join(lines).encode()).hexdigest(),
        occupied_utilization=(occupied.lut, occupied.ff),
        fabric_utilization=(fabric.lut, fabric.ff),
        pcap_loads=board.pcap.loads,  # type: ignore[union-attr]
        pcap_retries=board.pcap.verification_retries,  # type: ignore[union-attr]
        telemetry_events=fingerprint_sink.event_count,
        telemetry_sha256=fingerprint_sink.hexdigest(),
        violations=[str(violation) for violation in monitor.violations],
        trace=lines,
    )


@dataclass(frozen=True)
class FieldDivergence:
    """One fingerprint field on which the kernels disagree."""

    name: str
    reference: object
    optimized: object

    def __str__(self) -> str:
        return f"{self.name}: reference={self.reference!r} optimized={self.optimized!r}"


@dataclass
class DivergenceReport:
    """Outcome of one oracle comparison."""

    system: str
    reference: KernelFingerprint
    optimized: KernelFingerprint
    #: Every candidate fingerprint compared against the reference.  In the
    #: classic two-way comparison this is just ``[optimized]``; the N-way
    #: sweep appends one entry per kernel (``optimized`` stays bound to
    #: the first candidate for compatibility).
    candidates: List[KernelFingerprint] = field(default_factory=list)
    fields: List[FieldDivergence] = field(default_factory=list)
    #: ``(index, reference_line, optimized_line)`` of the first trace
    #: record the kernels disagree on (a missing line reads as None).
    first_trace_divergence: Optional[Tuple[int, Optional[str], Optional[str]]] = None
    #: No-lost-requests findings from the serving-plan audit of a faulted
    #: fleet case (``check_serving_plan``).  Kernel-independent: a broken
    #: control plane fails the oracle even when every kernel agrees.
    plan_violations: List[str] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return bool(self.fields)

    @property
    def violations(self) -> List[str]:
        """Invariant violations from any kernel (tagged by kernel)."""
        out = []
        fingerprints = [self.reference]
        fingerprints.extend(self.candidates if self.candidates else [self.optimized])
        for fingerprint in fingerprints:
            out.extend(f"{fingerprint.kernel}: {v}" for v in fingerprint.violations)
        out.extend(f"serving-plan: {v}" for v in self.plan_violations)
        return out

    @property
    def ok(self) -> bool:
        return not self.diverged and not self.violations

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.system}: kernels agree "
                f"({self.optimized.trace_len} trace records, "
                f"{self.optimized.completions} completions)"
            )
        lines = [f"{self.system}: DIVERGENCE"]
        lines.extend(f"  {divergence}" for divergence in self.fields)
        if self.first_trace_divergence is not None:
            index, ref_line, opt_line = self.first_trace_divergence
            lines.append(f"  first trace divergence at record {index}:")
            lines.append(f"    reference: {ref_line}")
            lines.append(f"    optimized: {opt_line}")
        for violation in self.violations:
            lines.append(f"  invariant: {violation}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready condensation (persisted inside repro files)."""
        payload: Dict[str, object] = {
            "system": self.system,
            "fields": [
                {
                    "name": divergence.name,
                    "reference": repr(divergence.reference),
                    "optimized": repr(divergence.optimized),
                }
                for divergence in self.fields
            ],
            "violations": self.violations,
        }
        if self.first_trace_divergence is not None:
            index, ref_line, opt_line = self.first_trace_divergence
            payload["first_trace_divergence"] = {
                "index": index,
                "reference": ref_line,
                "optimized": opt_line,
            }
        return payload


def _first_trace_divergence(
    reference: KernelFingerprint, optimized: KernelFingerprint
) -> Optional[Tuple[int, Optional[str], Optional[str]]]:
    for index, (ref_line, opt_line) in enumerate(
        zip(reference.trace, optimized.trace)
    ):
        if ref_line != opt_line:
            return (index, ref_line, opt_line)
    shorter = min(len(reference.trace), len(optimized.trace))
    if len(reference.trace) != len(optimized.trace):
        ref_extra = reference.trace[shorter] if len(reference.trace) > shorter else None
        opt_extra = optimized.trace[shorter] if len(optimized.trace) > shorter else None
        return (shorter, ref_extra, opt_extra)
    return None


class DifferentialOracle:
    """Run one cell on every kernel and demand bit-identical outcomes.

    The reference runs once per cell; each *candidate* kernel is diffed
    against that single reference fingerprint.  ``kernels`` names the
    candidates (resolved through the registry); the default is the classic
    two-way heap-vs-reference comparison, and the verify CLI passes
    ``("wheel", "optimized")`` for the three-way sweep (wheel first: the
    production default is the candidate-of-record, so ``optimized`` —
    and with it a report's headline numbers — binds to it).  With more than
    one candidate, divergence field names are tagged ``kernel:field`` so a
    failing sweep says which backend broke.

    The factories are injectable so tests can swap a deliberately broken
    kernel in for either side and assert the oracle catches it;
    ``optimized_factory`` overrides the registry lookup for the
    ``optimized`` candidate only.
    """

    def __init__(
        self,
        optimized_factory: Optional[Callable[[], Engine]] = None,
        reference_factory: Optional[Callable[[], Engine]] = None,
        horizon_ms: float = DEFAULT_HORIZON_MS,
        kernels: Sequence[str] = ("optimized",),
    ) -> None:
        if not kernels:
            raise ValueError("at least one candidate kernel is required")
        self.optimized_factory = optimized_factory or Engine
        self.reference_factory = reference_factory or ReferenceEngine
        self.horizon_ms = horizon_ms
        self.kernels = tuple(kernels)

    def _candidate_factory(self, name: str) -> Callable[[], Engine]:
        if name == "optimized":
            return self.optimized_factory
        return resolve_kernel(name)

    def check(
        self,
        system: str,
        arrivals: Sequence[Arrival],
        params: Optional[SystemParameters] = None,
    ) -> DivergenceReport:
        reference = instrumented_run(
            system,
            arrivals,
            params,
            kernel="reference",
            engine_factory=self.reference_factory,
            horizon_ms=self.horizon_ms,
        )
        candidates = [
            instrumented_run(
                system,
                arrivals,
                params,
                kernel=name,
                engine_factory=self._candidate_factory(name),
                horizon_ms=self.horizon_ms,
            )
            for name in self.kernels
        ]
        report = DivergenceReport(
            system=system,
            reference=reference,
            optimized=candidates[0],
            candidates=candidates,
        )
        ref_fields = reference.comparable()
        for candidate in candidates:
            cand_fields = candidate.comparable()
            tag = "" if len(candidates) == 1 else f"{candidate.kernel}:"
            for name in KernelFingerprint.COMPARED:
                if ref_fields[name] != cand_fields[name]:
                    report.fields.append(
                        FieldDivergence(
                            f"{tag}{name}", ref_fields[name], cand_fields[name]
                        )
                    )
        if report.diverged:
            for candidate in candidates:
                divergence = _first_trace_divergence(reference, candidate)
                if divergence is not None:
                    report.first_trace_divergence = divergence
                    break
        return report


def check_store(store_or_path) -> List[str]:
    """Audit a durable event store's integrity and projections.

    Three layers of checks, each reported as a human-readable finding
    string (empty list = clean):

    * **log shape** — notification ids must be dense and strictly
      increasing from 1 (the recorder contract; a gap means a torn or
      hand-edited log);
    * **snapshot consistency** — every snapshot's completed-cell keys
      must be backed by a successful record at or before its watermark;
    * **projection oracle** — every built-in projection's persisted
      incremental state must equal a from-scratch rebuild of the whole
      log (:func:`repro.store.projections.verify_store_projections`).
    """
    from ..campaign.results import RunRecord
    from ..store import KIND_RECORD, KIND_SNAPSHOT, as_campaign_store, cell_key
    from ..store.projections import verify_store_projections
    from ..store.snapshot import CampaignSnapshot

    store = as_campaign_store(store_or_path)
    findings: List[str] = []

    notifications = store.select()
    expected = 1
    for notification in notifications:
        if notification.id != expected:
            findings.append(
                f"notification log gap: expected id {expected}, "
                f"found {notification.id}"
            )
            expected = notification.id
        expected += 1

    completed_by_id: dict = {}
    seen_keys: set = set()
    for notification in notifications:
        if notification.kind == KIND_RECORD:
            record = RunRecord.from_dict(notification.payload)
            if not record.failed:
                seen_keys.add(cell_key(record))
            completed_by_id[notification.id] = set(seen_keys)
        elif notification.kind == KIND_SNAPSHOT:
            snapshot = CampaignSnapshot.from_dict(notification.payload)
            covered = completed_by_id.get(
                max(
                    (i for i in completed_by_id if i <= snapshot.covered_id),
                    default=0,
                ),
                set(),
            )
            missing = [k for k in snapshot.completed if k not in covered]
            if missing:
                findings.append(
                    f"snapshot (notification {notification.id}) claims "
                    f"{len(missing)} completed cell(s) with no backing "
                    f"record at or before id {snapshot.covered_id}: "
                    + ", ".join(missing[:3])
                    + ("..." if len(missing) > 3 else "")
                )

    findings.extend(verify_store_projections(store))
    return findings
