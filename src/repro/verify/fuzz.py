"""Property-based scenario fuzzing for the differential oracle.

The fuzzer samples random (system × workload × parameters) cells through
the campaign registry — every registered scenario is a template whose
workload shape, seeds and parameter overrides get perturbed — and drives
each sampled :class:`FuzzCase` through the oracle.  Sampling is fully
deterministic: case ``i`` of root seed ``s`` is always the same case, and
each case owns an independent RNG stream so shrinking one case never
shifts its neighbours.

A failing case is **shrunk** (greedy: fewer applications, flatter batch
range, dropped overrides, calmer congestion — every candidate re-checked
against the oracle) and **persisted** as a JSON repro file that
``python -m repro campaign replay <file>`` turns back into the exact
failing comparison.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..apps.benchmarks import BENCHMARKS
from ..campaign.scenario import SCENARIOS, SYSTEM_REGISTRY, Scenario, system_names
from ..chaos import FaultSchedule, sample_fault_schedule
from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fleet import (
    FLEET_SCENARIOS,
    FleetScenario,
    FleetWorkload,
    partition_arrivals,
    policy_names,
    supervised_partition,
)
from ..workloads.generator import Arrival, Condition, WorkloadSpec

#: Marker distinguishing repro files from RunRecord JSONL results.
REPRO_KIND = "verify-repro"

#: Bumped whenever the repro file shape changes incompatibly.
REPRO_SCHEMA = 1

#: Parameter overrides the fuzzer may inject, with the values it samples
#: from.  Deliberately conservative: every combination must still drain
#: (the oracle treats a divergent *failure* as a finding, but a scenario
#: that hangs on both kernels is a workload bug, not a kernel bug).
SAFE_OVERRIDES: Dict[str, Tuple[float, ...]] = {
    "inter_slot_transfer_ms": (5.0, 10.0, 25.0),
    "pcap_bandwidth_mbps": (100.0, 200.0),
    "launch_overhead_ms": (0.02, 0.1),
    "scheduler_action_ms": (0.01, 0.05),
    "little_bitstream_mb": (10.0, 20.0),
    "pr_failure_rate": (0.02,),
    "only_little_slots": (4, 6),
    "big_little_little_slots": (2, 4),
}


@lru_cache(maxsize=64)
def _fleet_serving_plan(
    workload: FleetWorkload,
    n_shards: int,
    policy: str,
    seed: int,
    sequence_index: int,
    faults: Tuple[Tuple[str, float, int, float, float], ...],
):
    """Memoized supervised serving plan of one faulted fleet deployment."""
    stream = workload.arrivals(seed, sequence_index)
    return supervised_partition(
        stream, n_shards, policy, seed, FaultSchedule.from_tuples(faults)
    )


@lru_cache(maxsize=64)
def _fleet_dispatch_plan(
    workload: FleetWorkload,
    n_shards: int,
    policy: str,
    seed: int,
    sequence_index: int,
    faults: Tuple[Tuple[str, float, int, float, float], ...] = (),
) -> Tuple[Tuple[Arrival, ...], ...]:
    """Memoized dispatch plan shared by a fleet scenario's shard cases.

    A fleet sweep enumerates one case per shard of the same deployment;
    without the memo every case would regenerate the full global stream
    and re-route it (O(shards²) partitions per sweep).  A non-empty fault
    schedule routes through the supervised control plane instead of the
    frozen front-end.
    """
    if faults:
        plan = _fleet_serving_plan(
            workload, n_shards, policy, seed, sequence_index, faults
        )
        return tuple(tuple(shard) for shard in plan.streams)
    stream = workload.arrivals(seed, sequence_index)
    return tuple(
        tuple(shard)
        for shard in partition_arrivals(stream, n_shards, policy, seed)
    )


@dataclass(frozen=True)
class FuzzCase:
    """One oracle-checkable cell: a system, a seeded workload, parameters."""

    case_id: int
    system: str
    condition: str
    n_apps: int
    batch_lo: int
    batch_hi: int
    seed: int
    sequence_index: int = 0
    apps: Tuple[str, ...] = ()
    overrides: Tuple[Tuple[str, float], ...] = ()
    #: The registered scenario this case was derived from (label only).
    scenario: str = "fuzz"
    #: Fleet shape: ``n_shards == 0`` means a plain single-cluster case;
    #: otherwise the case checks shard ``shard`` of an ``n_shards``-wide
    #: fleet whose global ``fleet_kind`` stream is routed by ``policy``.
    n_shards: int = 0
    policy: str = ""
    shard: int = 0
    fleet_kind: str = ""
    #: Fault schedule injected into the fleet's control plane, flat-tuple
    #: form (``FaultSpec.to_tuple``).  Only meaningful for fleet cases.
    faults: Tuple[Tuple[str, float, int, float, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "apps", tuple(self.apps))
        object.__setattr__(
            self, "overrides", tuple(tuple(pair) for pair in self.overrides)
        )
        if self.n_shards and not 0 <= self.shard < self.n_shards:
            raise ValueError(
                f"shard {self.shard} outside [0, {self.n_shards})"
            )
        schedule = FaultSchedule(
            fault if isinstance(fault, tuple) else tuple(fault)
            for fault in self.faults
        )
        if self.n_shards:
            schedule.validate_for(self.n_shards)
        elif schedule:
            raise ValueError("faults require a fleet case (n_shards > 0)")
        object.__setattr__(self, "faults", schedule.to_tuples())

    # ------------------------------------------------------------------
    @property
    def is_fleet(self) -> bool:
        return self.n_shards > 0

    def workload(self) -> WorkloadSpec:
        return WorkloadSpec(
            condition=Condition[self.condition],
            n_apps=self.n_apps,
            sequence_count=self.sequence_index + 1,
            batch_range=(self.batch_lo, self.batch_hi),
            apps=self.apps,
        )

    def fleet_workload(self) -> FleetWorkload:
        return FleetWorkload(
            kind=self.fleet_kind or "uniform",
            condition=Condition[self.condition],
            n_apps=self.n_apps,
            batch_range=(self.batch_lo, self.batch_hi),
            apps=self.apps,
        )

    def fault_schedule(self) -> FaultSchedule:
        return FaultSchedule.from_tuples(self.faults)

    def arrivals(self) -> List[Arrival]:
        if self.is_fleet:
            shards = _fleet_dispatch_plan(
                self.fleet_workload(),
                self.n_shards,
                self.policy or "hash",
                self.seed,
                self.sequence_index,
                self.faults,
            )
            return list(shards[self.shard])
        return self.workload().sequence(self.seed, self.sequence_index)

    def plan_violations(self) -> List[str]:
        """No-lost-requests audit of this case's serving plan.

        Empty for non-fleet and fault-free cases.  For faulted fleet
        cases the supervised plan is checked against the ledger/stream
        invariants (:func:`repro.verify.invariants.check_serving_plan`);
        any finding is a control-plane bug the oracle must surface even
        when the kernels agree with each other.
        """
        if not (self.is_fleet and self.faults):
            return []
        from .invariants import check_serving_plan  # lazy: heavy import

        workload = self.fleet_workload()
        plan = _fleet_serving_plan(
            workload, self.n_shards, self.policy or "hash",
            self.seed, self.sequence_index, self.faults,
        )
        stream = workload.arrivals(self.seed, self.sequence_index)
        return [str(v) for v in check_serving_plan(plan, stream)]

    def params(self) -> SystemParameters:
        if not self.overrides:
            return DEFAULT_PARAMETERS
        return DEFAULT_PARAMETERS.with_overrides(**dict(self.overrides))

    def describe(self) -> str:
        parts = [
            f"case {self.case_id}",
            self.system,
            f"{self.condition.lower()}",
            f"{self.n_apps} apps",
            f"batch [{self.batch_lo}, {self.batch_hi}]",
            f"seed {self.seed}/{self.sequence_index}",
        ]
        if self.is_fleet:
            parts.append(
                f"fleet {self.fleet_kind or 'uniform'} "
                f"shard {self.shard}/{self.n_shards} via {self.policy or 'hash'}"
            )
        if self.faults:
            parts.append(
                "faults "
                + ",".join(f.describe() for f in self.fault_schedule())
            )
        if self.overrides:
            parts.append(
                "overrides "
                + ",".join(f"{name}={value}" for name, value in self.overrides)
            )
        return " ".join(parts)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["apps"] = list(self.apps)
        payload["overrides"] = [list(pair) for pair in self.overrides]
        payload["faults"] = [list(fault) for fault in self.faults]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FuzzCase":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - fields)
        if unknown:
            raise ValueError(f"unknown fuzz-case fields: {', '.join(unknown)}")
        missing = sorted(
            {
                f.name
                for f in dataclasses.fields(cls)
                if f.default is dataclasses.MISSING
                and f.default_factory is dataclasses.MISSING  # type: ignore[misc]
            }
            - set(payload)
        )
        if missing:
            raise ValueError(f"fuzz case is missing fields: {', '.join(missing)}")
        return cls(**payload)  # type: ignore[arg-type]


def cases_from_scenario(scenario: Scenario) -> List[FuzzCase]:
    """The exhaustive oracle cells of one registered scenario.

    Enumeration order mirrors ``CampaignRunner.cells_for`` (seed-major,
    then sequence, then system) so ``repro verify --scenario X`` visits
    cells in the same order ``repro campaign run X`` simulates them.
    """
    workload = scenario.workload
    lo, hi = workload.batch_range
    cases: List[FuzzCase] = []
    for seed in scenario.seeds:
        for index in range(workload.sequence_count):
            for system in scenario.system_names():
                cases.append(
                    FuzzCase(
                        case_id=len(cases),
                        system=system,
                        condition=workload.condition.name,
                        n_apps=workload.n_apps,
                        batch_lo=lo,
                        batch_hi=hi,
                        seed=seed,
                        sequence_index=index,
                        apps=workload.apps,
                        overrides=scenario.overrides,
                        scenario=scenario.name,
                    )
                )
    return cases


def cases_from_fleet_scenario(scenario: FleetScenario) -> List[FuzzCase]:
    """The exhaustive oracle cells of one fleet scenario: every shard.

    Enumeration mirrors :meth:`repro.fleet.Fleet.cells` (seed-major, then
    shard), so ``repro verify --scenario fleet-X`` checks exactly the
    cells ``repro fleet run fleet-X`` simulates — each shard's sub-stream
    on both kernels.
    """
    workload = scenario.workload
    lo, hi = workload.batch_range
    cases: List[FuzzCase] = []
    for seed in scenario.seeds:
        for shard in range(scenario.n_shards):
            cases.append(
                FuzzCase(
                    case_id=len(cases),
                    system=scenario.system,
                    condition=workload.condition.name,
                    n_apps=workload.n_apps,
                    batch_lo=lo,
                    batch_hi=hi,
                    seed=seed,
                    sequence_index=0,
                    apps=workload.apps,
                    overrides=scenario.overrides,
                    scenario=scenario.name,
                    n_shards=scenario.n_shards,
                    policy=scenario.policy,
                    shard=shard,
                    fleet_kind=workload.kind,
                    faults=scenario.faults,
                )
            )
    return cases


class ScenarioFuzzer:
    """Deterministic sampler of :class:`FuzzCase` s over the registry."""

    def __init__(
        self,
        seed: int,
        scenario: Optional[str] = None,
        systems: Optional[Sequence[str]] = None,
        max_apps: int = 6,
        max_batch: int = 12,
        chaos: bool = False,
    ) -> None:
        if (
            scenario is not None
            and scenario not in SCENARIOS
            and scenario not in FLEET_SCENARIOS
        ):
            raise KeyError(
                f"unknown scenario {scenario!r}; available: "
                f"{', '.join((*SCENARIOS, *FLEET_SCENARIOS))}"
            )
        if chaos and scenario is not None and scenario not in FLEET_SCENARIOS:
            raise KeyError(
                f"chaos fuzzing needs a fleet scenario, not {scenario!r}; "
                f"available: {', '.join(FLEET_SCENARIOS)}"
            )
        unknown = [name for name in (systems or ()) if name not in SYSTEM_REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown system(s) {', '.join(unknown)}; "
                f"available: {', '.join(SYSTEM_REGISTRY)}"
            )
        self.seed = seed
        self.scenario = scenario
        self.systems = tuple(systems) if systems else ()
        self.max_apps = max_apps
        self.max_batch = max_batch
        #: Chaos mode samples only fleet deployments and always injects a
        #: fault schedule into each.
        self.chaos = chaos

    def case(self, index: int) -> FuzzCase:
        """Sample case ``index`` (independent of every other index)."""
        rng = random.Random(f"verify-fuzz/{self.seed}/{index}")
        if self.chaos:
            name = self.scenario or rng.choice(list(FLEET_SCENARIOS))
        else:
            name = self.scenario or rng.choice([*SCENARIOS, *FLEET_SCENARIOS])
        if name in FLEET_SCENARIOS:
            return self._fleet_case(index, rng, FLEET_SCENARIOS[name])
        template = SCENARIOS[name]
        pool = self.systems or template.system_names() or tuple(system_names())
        system = rng.choice(list(pool))
        # Mostly keep the template's congestion regime; sometimes roam.
        if rng.random() < 0.25:
            condition = rng.choice(list(Condition)).name
        else:
            condition = template.workload.condition.name
        n_apps = rng.randint(1, min(self.max_apps, template.workload.n_apps))
        batch_lo = rng.randint(1, 4)
        batch_hi = batch_lo + rng.randint(0, self.max_batch - batch_lo)
        overrides = dict(template.overrides)
        for _ in range(rng.randint(0, 2)):
            key = rng.choice(sorted(SAFE_OVERRIDES))
            overrides[key] = rng.choice(SAFE_OVERRIDES[key])
        apps: Tuple[str, ...] = ()
        if rng.random() < 0.2:
            count = rng.randint(1, len(BENCHMARKS))
            apps = tuple(sorted(rng.sample(sorted(BENCHMARKS), count)))
        return FuzzCase(
            case_id=index,
            system=system,
            condition=condition,
            n_apps=n_apps,
            batch_lo=batch_lo,
            batch_hi=batch_hi,
            seed=rng.randrange(10_000),
            sequence_index=rng.randrange(2),
            apps=apps,
            overrides=tuple(sorted(overrides.items())),
            scenario=name,
        )

    def _fleet_case(
        self, index: int, rng: random.Random, template: FleetScenario
    ) -> FuzzCase:
        """Sample one shard of a perturbed fleet deployment.

        The fleet shape roams around the template — shard count, routing
        policy and the checked shard all vary — while ``n_apps`` sizes the
        *global* stream, so the shard under test sees a routed sub-stream.
        """
        system = rng.choice(list(self.systems)) if self.systems else template.system
        if rng.random() < 0.25:
            condition = rng.choice(list(Condition)).name
        else:
            condition = template.workload.condition.name
        n_shards = rng.randint(2, max(2, template.n_shards))
        if rng.random() < 0.25:
            policy = rng.choice(policy_names())
        else:
            policy = template.policy
        shard = rng.randrange(n_shards)
        n_apps = rng.randint(
            1, min(2 * self.max_apps, template.workload.n_apps)
        )
        batch_lo = rng.randint(1, 4)
        batch_hi = batch_lo + rng.randint(0, self.max_batch - batch_lo)
        overrides = dict(template.overrides)
        for _ in range(rng.randint(0, 2)):
            key = rng.choice(sorted(SAFE_OVERRIDES))
            overrides[key] = rng.choice(SAFE_OVERRIDES[key])
        faults: Tuple[Tuple[str, float, int, float, float], ...] = ()
        if self.chaos or rng.random() < 0.35:
            # A schedule sized to the sampled stream: faults land inside
            # the expected arrival span, so kills actually interact with
            # admissions instead of firing into a drained fleet.
            lo_ms, hi_ms = Condition[condition].interval_range
            span_ms = max(1.0, n_apps * (lo_ms + hi_ms) / 2.0)
            faults = sample_fault_schedule(
                rng.randrange(1_000_000), n_shards, span_ms
            ).to_tuples()
        return FuzzCase(
            case_id=index,
            system=system,
            condition=condition,
            n_apps=n_apps,
            batch_lo=batch_lo,
            batch_hi=batch_hi,
            seed=rng.randrange(10_000),
            sequence_index=rng.randrange(2),
            overrides=tuple(sorted(overrides.items())),
            scenario=template.name,
            n_shards=n_shards,
            policy=policy,
            shard=shard,
            fleet_kind=template.workload.kind,
            faults=faults,
        )

    def cases(self, count: int) -> Iterator[FuzzCase]:
        for index in range(count):
            yield self.case(index)


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _shrink_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Strictly simpler variants of ``case``, most aggressive first."""
    if case.faults:
        # Faults shrink first: a divergence that survives without any
        # fault schedule is a plain kernel bug, not a chaos finding —
        # and a one-shard-fewer schedule isolates which failure matters.
        yield dataclasses.replace(case, faults=())
        for shard in sorted({fault[2] for fault in case.faults}):
            remaining = tuple(
                fault for fault in case.faults if fault[2] != shard
            )
            if remaining != case.faults:
                yield dataclasses.replace(case, faults=remaining)
    if case.is_fleet:
        # Drop the fleet wrapping entirely: the full (unrouted) stream on
        # one cluster is the simplest variant of a shard case.
        yield dataclasses.replace(
            case, n_shards=0, policy="", shard=0, fleet_kind="", faults=()
        )
    for n_apps in sorted({1, case.n_apps // 2, case.n_apps - 1}):
        if 1 <= n_apps < case.n_apps:
            yield dataclasses.replace(case, n_apps=n_apps)
    if case.is_fleet:
        if case.n_shards > 2:
            yield dataclasses.replace(
                case, n_shards=2, shard=min(case.shard, 1),
                faults=tuple(f for f in case.faults if f[2] < 2),
            )
        if case.shard:
            yield dataclasses.replace(case, shard=0)
        if case.fleet_kind not in ("", "uniform"):
            yield dataclasses.replace(case, fleet_kind="uniform")
        if case.policy not in ("", "hash"):
            yield dataclasses.replace(case, policy="hash")
    for batch_hi in sorted({case.batch_lo, (case.batch_lo + case.batch_hi) // 2}):
        if case.batch_lo <= batch_hi < case.batch_hi:
            yield dataclasses.replace(case, batch_hi=batch_hi)
    if case.sequence_index:
        yield dataclasses.replace(case, sequence_index=0)
    for index in range(len(case.overrides)):
        remaining = case.overrides[:index] + case.overrides[index + 1:]
        yield dataclasses.replace(case, overrides=remaining)
    if case.condition != Condition.LOOSE.name:
        yield dataclasses.replace(case, condition=Condition.LOOSE.name)
    if case.apps:
        yield dataclasses.replace(case, apps=())


def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    budget: int = 48,
) -> Tuple[FuzzCase, int]:
    """Greedy shrink: keep the first simpler variant that still fails.

    ``still_fails`` re-runs the oracle on a candidate; ``budget`` bounds
    the total number of those runs.  Returns the shrunk case and the
    number of oracle runs spent.
    """
    attempts = 0
    current = case
    progress = True
    while progress and attempts < budget:
        progress = False
        for candidate in _shrink_candidates(current):
            if attempts >= budget:
                break
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current, attempts


# ---------------------------------------------------------------------------
# Repro files
# ---------------------------------------------------------------------------


def save_repro(path: Union[str, Path], case: FuzzCase, report) -> Path:
    """Persist a failing case (plus its divergence) as a replayable repro."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "kind": REPRO_KIND,
        "schema": REPRO_SCHEMA,
        "case": case.to_dict(),
        "divergence": report.to_dict() if report is not None else None,
    }
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def is_repro_payload(payload: object) -> bool:
    """True when a parsed JSON document is a verify repro file."""
    return isinstance(payload, dict) and payload.get("kind") == REPRO_KIND


def sniff_repro_file(path: Union[str, Path]) -> Optional[Dict[str, object]]:
    """The parsed repro payload when ``path`` is one, else None.

    Cheap first: only a bounded prefix is read to rule out results JSONL
    files (whose first line is one complete record, never a bare ``{``,
    and which never contain the ``kind`` marker).  Only a plausible repro
    is then parsed in full; the marker separates repros from any other
    single-document JSON.
    """
    target = Path(path)
    with target.open("r", encoding="utf-8") as handle:
        prefix = handle.read(4096)
    if not prefix.lstrip().startswith("{"):
        return None
    first_line = prefix.splitlines()[0].strip()
    if first_line != "{" and f'"kind": "{REPRO_KIND}"' not in prefix:
        return None
    try:
        payload = json.loads(target.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    return payload if is_repro_payload(payload) else None


def parse_repro_payload(
    payload: Dict[str, object], source: str = "<payload>"
) -> Tuple[FuzzCase, Optional[Dict[str, object]]]:
    """Validate an already-parsed repro document into (case, divergence)."""
    if not is_repro_payload(payload):
        raise ValueError(f"{source}: not a {REPRO_KIND} file")
    schema = payload.get("schema", REPRO_SCHEMA)
    if schema != REPRO_SCHEMA:
        raise ValueError(
            f"{source}: repro schema {schema} not supported "
            f"(expected {REPRO_SCHEMA})"
        )
    case = FuzzCase.from_dict(payload["case"])
    return case, payload.get("divergence")


def load_repro(path: Union[str, Path]) -> Tuple[FuzzCase, Optional[Dict[str, object]]]:
    """Load a repro file back into its case and recorded divergence."""
    return parse_repro_payload(json.loads(Path(path).read_text()), source=str(path))


def replay_case(case: FuzzCase, oracle=None):
    """Run one case through the oracle; returns the fresh report.

    For faulted fleet cases the report also carries the serving-plan
    audit: a control plane that lost or double-served a request fails
    the case even when every kernel agrees.
    """
    from .oracle import DifferentialOracle  # lazy: fuzz is imported by oracle users

    oracle = oracle if oracle is not None else DifferentialOracle()
    report = oracle.check(case.system, case.arrivals(), case.params())
    report.plan_violations = case.plan_violations()
    return report


def replay_repro(path: Union[str, Path], oracle=None):
    """Re-run the oracle on a persisted repro; returns the fresh report."""
    case, _ = load_repro(path)
    return replay_case(case, oracle)
