"""The campaign runner: scenario -> cells -> backend -> persisted records."""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..config import SystemParameters
from .backend import CampaignCell, make_backend
from .results import ResultsStore, RunRecord
from .scenario import Scenario, get_scenario


class CampaignRunner:
    """Execute campaigns over a serial or multiprocessing backend.

    ``jobs=1`` selects the deterministic serial reference backend;
    ``jobs=N`` fans cells out over N worker processes.  When a ``store``
    (or path) is given, every produced record is appended there so figures
    can later be replayed without re-simulating.  Paths keep their legacy
    JSONL behavior unless durability features are requested:
    ``snapshot_every`` checkpoints a resumable
    :class:`~repro.store.snapshot.CampaignSnapshot` into the store every N
    completed cells, ``resume`` skips cells the store already holds a
    successful record for, and ``store_backend`` selects the recorder
    (``"jsonl"`` / ``"sqlite"``; paths with a SQLite suffix or file magic
    auto-select SQLite).
    """

    def __init__(
        self,
        jobs: int = 1,
        backend=None,
        store=None,
        base_params: Optional[SystemParameters] = None,
        raw_samples: bool = False,
        events_dir: Optional[Union[str, Path]] = None,
        timeout_s: Optional[float] = None,
        snapshot_every: int = 0,
        resume: bool = False,
        store_backend: Optional[str] = None,
    ) -> None:
        self.backend = (
            backend
            if backend is not None
            else make_backend(jobs, timeout_s=timeout_s)
        )
        self.snapshot_every = snapshot_every
        self.resume = resume
        #: Outcome of the most recent :meth:`run_cells` (resumed/executed
        #: counts) — the CLI surfaces it after a ``--resume`` run.
        self.last_outcome = None
        self.store = self._resolve_store(store, store_backend)
        self.base_params = base_params
        #: Persist raw per-request samples on records (``--raw-samples``);
        #: off by default — records carry the bounded-memory digest.
        self.raw_samples = raw_samples
        #: When set, every cell writes its typed event stream under here.
        self.events_dir = Path(events_dir) if events_dir is not None else None

    def _resolve_store(self, store, store_backend: Optional[str]):
        """Map the ``store`` argument onto a concrete store object.

        Store objects pass through untouched.  A path stays a plain
        :class:`ResultsStore` (the legacy, bit-identical default) unless
        snapshots/resume/an explicit or sniffed non-JSONL backend ask for
        the event store.
        """
        if store is None or not isinstance(store, (str, Path)):
            return store
        from ..store import is_sqlite_path, open_store

        wants_event_store = (
            self.resume
            or self.snapshot_every > 0
            or store_backend is not None
            or is_sqlite_path(store)
        )
        if wants_event_store:
            return open_store(store, backend=store_backend)
        return ResultsStore(store)

    def cells_for(self, scenario: Scenario) -> List[CampaignCell]:
        """Enumerate a scenario into cells, sequence-major then system.

        The ordering mirrors the historical ``run_matrix`` loop (sequences
        outer, systems inner) so serial campaigns visit simulations in the
        same order the old harness did.
        """
        params = scenario.parameters(self.base_params)
        cells: List[CampaignCell] = []
        for seed in scenario.seeds:
            for index in range(scenario.workload.sequence_count):
                for system in scenario.system_names():
                    events_path = None
                    if self.events_dir is not None:
                        events_path = str(
                            self.events_dir
                            / f"{scenario.name}-{system}-seed{seed}-seq{index}.jsonl"
                        )
                    cells.append(
                        CampaignCell(
                            scenario=scenario.name,
                            system=system,
                            sequence_index=index,
                            seed=seed,
                            params=params,
                            workload=scenario.workload,
                            keep_raw_samples=self.raw_samples,
                            events_path=events_path,
                        )
                    )
        return cells

    def run(self, scenario: Union[str, Scenario]) -> List[RunRecord]:
        """Run a scenario (by name or spec) and persist its records."""
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        return self.run_cells(self.cells_for(scenario))

    def run_cells(self, cells: Sequence[CampaignCell]) -> List[RunRecord]:
        """Run pre-built cells (ad-hoc campaigns over explicit arrivals)."""
        from ..store.resume import execute_with_store

        outcome = execute_with_store(
            self.backend,
            list(cells),
            store=self.store,
            snapshot_every=self.snapshot_every,
            resume=self.resume,
        )
        self.last_outcome = outcome
        return outcome.records
