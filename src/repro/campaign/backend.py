"""Campaign execution backends: the simulation core, serial and parallel.

:func:`simulate_run` is the single place a (system, arrivals) pair is
turned into a finished simulation — ``experiments.runner.run_sequence``
and both campaign backends are thin wrappers over it.  Each campaign
*cell* carries everything a worker needs (workload spec, seed, resolved
parameters), so the parallel backend ships only small picklable specs to
worker processes and each worker rebuilds its own engine, RNG streams
and application-instance-id counter — no cross-run global state.

The serial backend is the reference for determinism tests: for the same
cells, :class:`ProcessBackend` must return bit-identical records.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..apps.application import reset_instance_ids
from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fpga.board import FPGABoard
from ..schedulers.base import SchedulerStats
from ..sim import DEFAULT_ENGINE, Engine, Tracer
from ..telemetry import (
    JsonlEventLogSink,
    StreamingAggregationSink,
    TelemetryBus,
)
from ..workloads.generator import Arrival, WorkloadSpec, drive
from .results import COUNTER_FIELDS, RunRecord, fingerprint_parameters
from .scenario import get_system

#: Callback invoked with ``(engine, board, scheduler)`` right after the
#: simulation is assembled and before the workload starts driving it;
#: the verify layer uses these to attach tracers and invariant monitors.
Instrument = Callable[[Engine, FPGABoard, object], None]

#: Safety horizon: every sequence must drain well before this (ms).
DEFAULT_HORIZON_MS = 500_000_000.0


class DrainError(RuntimeError):
    """A simulation ended with undrained applications.

    The message names the stuck applications and the engine clock so a
    hang is diagnosable from the exception alone.
    """

    def __init__(
        self,
        system: str,
        completions: int,
        expected: int,
        undrained: Sequence[str],
        clock_ms: float,
    ) -> None:
        self.system = system
        self.completions = completions
        self.expected = expected
        self.undrained = list(undrained)
        self.clock_ms = clock_ms
        shown = ", ".join(self.undrained[:8])
        if len(self.undrained) > 8:
            shown += f", ... ({len(self.undrained)} total)"
        super().__init__(
            f"{system} finished {completions}/{expected} apps at "
            f"t={clock_ms:.0f} ms — the simulation did not drain; "
            f"undrained: {shown or 'unknown'}"
        )

    def __reduce__(self):
        # A worker's DrainError crosses the multiprocessing boundary by
        # pickle; the default reduction would replay ``args`` (the
        # message) into the 5-argument ``__init__`` and lose the
        # diagnostic, so rebuild from the structured fields instead.
        return (
            type(self),
            (
                self.system,
                self.completions,
                self.expected,
                self.undrained,
                self.clock_ms,
            ),
        )


@dataclass
class SimulationOutcome:
    """Raw outcome of one simulation: live stats object plus makespan."""

    system: str
    stats: SchedulerStats
    makespan_ms: float


def simulate_run(
    system: str,
    arrivals: Sequence[Arrival],
    params: Optional[SystemParameters] = None,
    horizon_ms: float = DEFAULT_HORIZON_MS,
    engine_factory: Optional[Callable[[], Engine]] = None,
    tracer: Optional[Tracer] = None,
    instruments: Iterable[Instrument] = (),
    telemetry: Optional[TelemetryBus] = None,
) -> SimulationOutcome:
    """Simulate ``system`` serving ``arrivals`` on a fresh board.

    ``engine_factory`` swaps the simulation kernel (the verify layer runs
    the same cell on the optimized and the reference kernel); when omitted
    the production default (:data:`repro.sim.DEFAULT_ENGINE`, the timing
    wheel) is used.  ``tracer``, ``telemetry`` and ``instruments`` attach
    observability before the workload starts.  Attach every sink to the
    bus before passing it in: slot observation is only installed when a
    sink wants slot events.
    """
    spec = get_system(system)
    resolved = params if params is not None else DEFAULT_PARAMETERS
    reset_instance_ids()
    engine = engine_factory() if engine_factory is not None else DEFAULT_ENGINE()
    board = FPGABoard(engine, spec.board_config, resolved, name="eval")
    if tracer is not None:
        # Keyword, not positional: OnBoardScheduler subclasses registered
        # without their own __init__ take dual_core third — a positional
        # tracer would silently flip that.
        scheduler = spec.factory(board, resolved, tracer=tracer)
    else:
        scheduler = spec.factory(board, resolved)
    if telemetry is not None:
        scheduler.telemetry = telemetry
        telemetry.observe_board(board)
    for instrument in instruments:
        instrument(engine, board, scheduler)
    engine.process(drive(engine, scheduler, arrivals))
    engine.run(until=horizon_ms)
    stats: SchedulerStats = scheduler.stats
    if stats.completions != len(arrivals):
        # ``inst.name`` already embeds the instance id ("IC#3").
        undrained = [app.inst.name for app in scheduler.active_apps()]
        raise DrainError(
            system, stats.completions, len(arrivals), undrained, engine.now
        )
    # ``engine.run(until=...)`` parks the clock at the horizon; the last
    # completion is the simulation's actual makespan (an empty arrival
    # list — a fleet shard the router sent nothing to — has makespan 0).
    return SimulationOutcome(
        system=system, stats=stats, makespan_ms=stats.last_finish_ms
    )


#: Worker-resident cache of regenerated arrival sequences, keyed by the
#: deterministic (workload spec, seed, sequence index) value.  Arrivals
#: are frozen, so sharing one tuple across cells cannot leak state
#: between runs; the cap bounds memory on unbounded fuzz sweeps (cleared
#: wholesale — the cache is an amortization, not a correctness feature).
_SEQUENCE_CACHE: Dict[Tuple[object, int, int], Tuple[Arrival, ...]] = {}
_SEQUENCE_CACHE_MAX = 256


@dataclass(frozen=True)
class CampaignCell:
    """One independently simulatable (system × sequence × seed) unit.

    Cells are frozen and picklable: either ``arrivals`` is given
    explicitly (ad-hoc campaigns over a concrete workload) or the worker
    regenerates the sequence deterministically from
    ``workload.sequence(seed, sequence_index)``.
    """

    scenario: str
    system: str
    sequence_index: int
    seed: int
    params: SystemParameters = DEFAULT_PARAMETERS
    workload: Optional[WorkloadSpec] = None
    arrivals: Optional[Tuple[Arrival, ...]] = None
    horizon_ms: float = DEFAULT_HORIZON_MS
    #: Simulation kernel to run on (a ``repro.verify.reference.KERNELS``
    #: name); "default" is the production wheel kernel, and the verify
    #: layer runs the same cell on several kernels and diffs the outcomes.
    kernel: str = "default"
    #: Fleet shard index this cell simulates; -1 for non-fleet cells.
    shard: int = -1
    #: Condition label for explicit-arrival cells (a cell regenerating
    #: from ``workload`` derives the label from the spec instead).
    condition_label: str = ""
    #: Persist raw per-request response samples on the record (opt-in via
    #: ``--raw-samples``); the default keeps only the O(1)-memory digest.
    keep_raw_samples: bool = False
    #: When set, the worker writes this cell's full typed event stream as
    #: a replayable JSONL log at this path.
    events_path: Optional[str] = None

    def engine_factory(self) -> Optional[Callable[[], Engine]]:
        """Engine factory for this cell's kernel (None = default kernel)."""
        if self.kernel == "default":
            return None
        from ..verify.reference import resolve_kernel  # lazy: avoids a cycle

        return resolve_kernel(self.kernel)

    def resolve_arrivals(self) -> List[Arrival]:
        if self.arrivals is not None:
            return list(self.arrivals)
        if self.workload is None:
            raise ValueError(
                f"cell {self.scenario}/{self.system} has neither a workload "
                "spec nor explicit arrivals"
            )
        # Worker-resident reuse: every system evaluated over the same
        # (spec, seed, index) cell replays the identical sequence, so the
        # regeneration cost is paid once per worker, not once per cell.
        # The key is the frozen spec's *value* (dataclass equality over
        # condition/n_apps/batch_range/apps), never object identity —
        # id() would silently miss across pickled worker boundaries.
        key = (self.workload, self.seed, self.sequence_index)
        cached = _SEQUENCE_CACHE.get(key)
        if cached is None:
            if len(_SEQUENCE_CACHE) >= _SEQUENCE_CACHE_MAX:
                _SEQUENCE_CACHE.clear()
            cached = tuple(self.workload.sequence(self.seed, self.sequence_index))
            _SEQUENCE_CACHE[key] = cached
        return list(cached)


def execute_cell(cell: CampaignCell) -> RunRecord:
    """Run one cell to completion and flatten it into a :class:`RunRecord`.

    This is the unit of work both backends schedule; it must stay a
    module-level function so it pickles under every multiprocessing start
    method.
    """
    arrivals = cell.resolve_arrivals()
    trackers = {}

    def attach_tracker(engine, board, scheduler) -> None:
        # Observability only: the tracker subscribes to slot observers and
        # schedules nothing, so the simulation trace is unchanged.
        from ..metrics.utilization import UtilizationTracker

        trackers["utilization"] = UtilizationTracker(board)

    def configure_retention(engine, board, scheduler) -> None:
        # Digest-only cells never materialize per-request records: the
        # completion stream feeds the digest sink instead, so memory per
        # cell is O(1) in the number of requests.
        scheduler.stats.retain_responses = cell.keep_raw_samples

    # The telemetry spine: a completion-only aggregation sink builds the
    # record's response digest online (zero launch-path overhead), and an
    # optional event-log sink persists the full replayable stream.
    bus = TelemetryBus()
    aggregate = StreamingAggregationSink(kinds=("completion",))
    bus.attach(aggregate)
    if cell.events_path:
        bus.attach(
            JsonlEventLogSink(
                cell.events_path,
                meta={
                    "scenario": cell.scenario,
                    "system": cell.system,
                    "sequence_index": cell.sequence_index,
                    "seed": cell.seed,
                    "kernel": cell.kernel,
                    "shard": cell.shard,
                    "n_apps": len(arrivals),
                },
            )
        )
    try:
        outcome = simulate_run(
            cell.system,
            arrivals,
            cell.params,
            horizon_ms=cell.horizon_ms,
            engine_factory=cell.engine_factory(),
            instruments=(attach_tracker, configure_retention),
            telemetry=bus,
        )
    finally:
        bus.close()
    stats = outcome.stats
    if cell.workload is not None:
        condition = cell.workload.condition.label
    else:
        condition = cell.condition_label or "explicit"
    tracker = trackers["utilization"]
    occupied = tracker.mean_occupied_utilization()
    fabric = tracker.mean_fabric_utilization()
    # ``engine.run(until=...)`` parks the clock at the horizon, so the
    # tracker's elapsed span covers a huge idle tail; renormalize the
    # whole-fabric means over the run's active span (the makespan).
    makespan = outcome.makespan_ms
    if makespan > 0:
        scale = tracker.elapsed_ms() / makespan
        utilization = {
            "occupied_lut": occupied.lut,
            "occupied_ff": occupied.ff,
            "fabric_lut": fabric.lut * scale,
            "fabric_ff": fabric.ff * scale,
            "elapsed_ms": makespan,
        }
    else:
        utilization = {
            "occupied_lut": 0.0, "occupied_ff": 0.0,
            "fabric_lut": 0.0, "fabric_ff": 0.0, "elapsed_ms": 0.0,
        }
    digest = aggregate.digest
    return RunRecord(
        scenario=cell.scenario,
        system=cell.system,
        condition=condition,
        sequence_index=cell.sequence_index,
        seed=cell.seed,
        n_apps=len(arrivals),
        makespan_ms=outcome.makespan_ms,
        response_times_ms=(
            stats.response_times_ms() if cell.keep_raw_samples else []
        ),
        counters={name: getattr(stats, name) for name in COUNTER_FIELDS},
        fingerprint=fingerprint_parameters(cell.params),
        shard=cell.shard,
        utilization=utilization,
        response_digest=digest.to_dict() if digest.count else {},
    )


class SerialBackend:
    """Reference backend: cells run in order, in this process.

    Backend contract (both backends, relied on by
    :func:`repro.store.resume.execute_with_store`): ``run`` returns one
    record per input cell, in input order, and each record depends only
    on its own cell — never on which other cells shared the call.  That
    is what lets the store layer dispatch cells in snapshot-sized chunks
    (and re-dispatch only the unfinished ones on ``--resume``) with
    results bit-identical to one monolithic ``run``.
    """

    name = "serial"

    def run(self, cells: Sequence[CampaignCell]) -> List[RunRecord]:
        return [execute_cell(cell) for cell in cells]


def failure_record(cell: CampaignCell, error: str) -> RunRecord:
    """A sample-free :class:`RunRecord` marking a cell whose worker failed.

    Surfacing the failure as a record (``record.failed`` is True) instead
    of raising keeps one crashed or hung cell from discarding the whole
    campaign: every healthy record still persists, and the failed cell is
    identifiable and individually re-runnable from the store.
    """
    # Never resolve_arrivals() here: regenerating the sequence re-runs the
    # very code that may have crashed or hung the worker, this time in the
    # orchestrating process.  The cheap spec metadata is enough.
    if cell.arrivals is not None:
        n_apps = len(cell.arrivals)
    elif cell.workload is not None:
        n_apps = cell.workload.n_apps
    else:
        n_apps = 0
    if cell.workload is not None:
        condition = cell.workload.condition.label
    else:
        condition = cell.condition_label or "explicit"
    return RunRecord(
        scenario=cell.scenario,
        system=cell.system,
        condition=condition,
        sequence_index=cell.sequence_index,
        seed=cell.seed,
        n_apps=n_apps,
        makespan_ms=0.0,
        fingerprint=fingerprint_parameters(cell.params),
        shard=cell.shard,
        error=error,
    )


@dataclass
class ProcessBackend:
    """Fan cells out over a process pool, surviving crashed workers.

    Results come back in cell order, so aggregate statistics are
    independent of worker completion order and bit-identical to the
    serial backend.  Unlike a bare ``multiprocessing.Pool.map`` — which
    hangs forever when a worker dies mid-task — this backend:

    * detects a crashed worker immediately (the pool breaks with
      :class:`BrokenProcessPool` rather than waiting on a lost task);
    * bounds each cell's wall-clock with ``timeout_s`` (hung workers are
      terminated, not waited on);
    * re-executes every unfinished cell deterministically in a fresh
      single-worker pool, up to ``max_retries`` isolation rounds —
      a transiently killed worker (OOM reaper, operator signal) costs a
      retry, not the campaign;
    * surfaces cells that still fail as :func:`failure_record` entries
      instead of raising, so the healthy records survive.

    Exceptions raised *by the simulation itself* (``DrainError``, bad
    specs) are real results, not infrastructure faults — they propagate
    exactly as the serial backend would raise them.
    """

    jobs: int = 2
    #: Retained for construction compatibility; the executor always ships
    #: one cell per task so long and short cells stay load-balanced.
    chunksize: int = 1
    #: Per-cell wall-clock bound in seconds (None = unbounded).  Measured
    #: from when collection reaches the cell, so an earlier slow cell can
    #: only lengthen — never shorten — a later cell's budget.
    timeout_s: Optional[float] = None
    #: Isolation rounds re-running crashed/timed-out cells before they
    #: are surfaced as failure records.
    max_retries: int = 1
    name: str = field(init=False, default="process")

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def run(self, cells: Sequence[CampaignCell]) -> List[RunRecord]:
        cells = list(cells)
        if self.jobs == 1 or len(cells) <= 1:
            return SerialBackend().run(cells)
        records, failures = self._round(cells, range(len(cells)), self.jobs)
        for _ in range(self.max_retries):
            if not failures:
                break
            # Isolation mode: each failed cell retries in its own fresh
            # single-worker pool, so a poison cell can only break its own
            # pool and healthy siblings caught in the breakage complete.
            still_failing: Dict[int, str] = {}
            for index in sorted(failures):
                retried, failed = self._round(cells, [index], 1)
                records.update(retried)
                still_failing.update(failed)
            failures = still_failing
        for index, error in failures.items():
            records[index] = failure_record(
                cells[index], f"{error} (after {self.max_retries} retries)"
            )
        return [records[index] for index in range(len(cells))]

    def _round(
        self,
        cells: Sequence[CampaignCell],
        indices: Iterable[int],
        workers: int,
    ) -> Tuple[Dict[int, RunRecord], Dict[int, str]]:
        """One pool generation: records collected and failures to retry."""
        indices = list(indices)
        records: Dict[int, RunRecord] = {}
        failures: Dict[int, str] = {}
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(indices))
        )
        try:
            futures = {
                index: executor.submit(execute_cell, cells[index])
                for index in indices
            }
            for index, future in futures.items():
                try:
                    records[index] = future.result(timeout=self.timeout_s)
                except concurrent.futures.TimeoutError:
                    failures[index] = (
                        f"cell timed out after {self.timeout_s:g}s"
                    )
                    # result(timeout=...) leaves the worker running; kill
                    # the pool's processes so the hung task cannot block
                    # shutdown (pending siblings fail over to retry).
                    self._terminate_workers(executor)
                except BrokenProcessPool:
                    # The dying worker is not attributable to one future:
                    # every unfinished cell fails over to the retry round.
                    failures[index] = "worker process crashed"
                except concurrent.futures.CancelledError:
                    failures[index] = "cancelled after pool breakage"
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        return records, failures

    @staticmethod
    def _terminate_workers(executor) -> None:
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()


def make_backend(
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
):
    """The backend matching a ``--jobs N [--cell-timeout S]`` request."""
    if jobs <= 1:
        return SerialBackend()
    return ProcessBackend(jobs=jobs, timeout_s=timeout_s, max_retries=max_retries)
