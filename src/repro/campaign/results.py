"""Persisted per-run records: the campaign subsystem's results layer.

Every campaign cell produces one :class:`RunRecord` — response samples,
scheduler counters, makespan and a parameter fingerprint — serialized as
one JSON object per line (JSONL) under ``results/``.  Records are the
contract between simulation and reporting: the figure modules and
``python -m repro replay`` consume records, so any plot can be re-rendered
without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import MISSING, asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..config import SystemParameters
from ..telemetry.digest import ResponseDigest

#: Bumped whenever the on-disk record shape changes incompatibly.
SCHEMA_VERSION = 1

#: Header line tag for results files.  A *string* (vs the integer record
#: ``schema`` field) so a header can never be mistaken for a record and a
#: handwritten ``{"schema": 1}`` line still fails record validation with
#: its line number, as pinned by the store tests.
RESULTS_FILE_SCHEMA = "repro-results/1"


def results_header() -> Dict[str, object]:
    """The header payload both :meth:`ResultsStore.write` and
    :meth:`ResultsStore.extend` put on line 1 of a brand-new file."""
    return {"schema": RESULTS_FILE_SCHEMA}


def is_results_header(payload: object) -> bool:
    """True when a parsed line-1 payload is the file header, not a record."""
    return (
        isinstance(payload, dict)
        and payload.get("schema") == RESULTS_FILE_SCHEMA
    )

#: Counter names copied off ``SchedulerStats`` into every record.
COUNTER_FIELDS = (
    "arrivals",
    "completions",
    "pr_count",
    "pr_blocked",
    "pr_wait_ms",
    "launches",
    "launch_blocked",
    "launch_wait_ms",
    "preemptions",
    "migrations_out",
)


def fingerprint_parameters(params: SystemParameters) -> str:
    """A short stable digest of a full parameter set.

    Two records compare as "same configuration" iff their fingerprints
    match, so aggregation across files can refuse to mix incompatible runs.
    """
    payload = json.dumps(asdict(params), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


@dataclass
class RunRecord:
    """Outcome of one simulated (system × sequence × seed) campaign cell."""

    scenario: str
    system: str
    condition: str
    sequence_index: int
    seed: int
    n_apps: int
    makespan_ms: float
    response_times_ms: List[float] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    fingerprint: str = ""
    #: Fleet shard that produced this record; -1 for non-fleet cells.
    shard: int = -1
    #: Time-weighted utilization aggregates of the run (occupied-slot and
    #: whole-fabric LUT/FF means plus the elapsed weight for rollups).
    utilization: Dict[str, float] = field(default_factory=dict)
    #: Serialized :class:`~repro.telemetry.digest.ResponseDigest` — the
    #: compact default representation of the run's response distribution.
    #: Raw ``response_times_ms`` are only persisted with ``--raw-samples``.
    response_digest: Dict[str, object] = field(default_factory=dict)
    #: Empty for successful runs.  A non-empty string marks a cell whose
    #: worker crashed or timed out past the backend's retry budget; such
    #: records carry no samples and are excluded from aggregation.
    error: str = ""
    schema: int = SCHEMA_VERSION

    @property
    def failed(self) -> bool:
        """True when the cell's execution failed instead of simulating."""
        return bool(self.error)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunRecord":
        schema = payload.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"record schema {schema} not supported (expected {SCHEMA_VERSION})"
            )
        fields = cls.__dataclass_fields__
        required = {
            name
            for name, f in fields.items()
            if f.default is MISSING and f.default_factory is MISSING
        }
        missing = sorted(required - payload.keys())
        if missing:
            raise ValueError(f"record is missing fields: {', '.join(missing)}")
        return cls(**{k: v for k, v in payload.items() if k in fields})

    def digest(self) -> Optional[ResponseDigest]:
        """The record's response digest, or None when it carries none."""
        if not self.response_digest:
            return None
        return ResponseDigest.from_dict(self.response_digest)

    def response_summary(self) -> ResponseDigest:
        """One digest over whatever response data the record has.

        Returns the stored digest when present (for records that also
        carry raw samples it is bit-identical to a digest built from
        them — both fold the same completion stream); raw-only records
        build one on the fly.  Callers needing *exact* percentiles should
        branch on ``response_times_ms`` themselves, as
        ``record_to_run_result`` does.
        """
        digest = self.digest()
        if digest is not None:
            return digest
        pooled = ResponseDigest()
        pooled.extend(self.response_times_ms)
        return pooled

    def mean_response_ms(self) -> float:
        if self.response_times_ms:
            return sum(self.response_times_ms) / len(self.response_times_ms)
        digest = self.digest()
        if digest is not None and digest.count:
            # The digest's running sum adds samples in the same order the
            # raw list would, so this mean is bit-identical to the raw
            # computation above.
            return digest.mean()
        raise ValueError(f"record {self.scenario}/{self.system} has no samples")


#: Files whose truncated trailing line has already been warned about this
#: process — re-loading the same damaged file (replay, aggregation, tests)
#: warns once, not on every read.
_TRUNCATION_WARNED: set = set()


class ResultsStore:
    """Crash-safe, append-oriented JSONL store for :class:`RunRecord` files.

    * :meth:`write` replaces the file atomically (write-to-temp +
      ``os.replace``), so a reader never observes a half-written file.
    * :meth:`extend` flushes and fsyncs the whole batch before returning,
      so a killed worker can lose at most its *own* unflushed batch — and
      only as a truncated final line, never a corrupted interior one.
    * :meth:`load` detects a truncated trailing line, skips it (warning
      once per file per process), and keeps every intact record before
      it; malformed *interior* lines still raise (those are corruption,
      not a crash).  ``skipped_lines`` holds the most recent load's skip
      count so callers can surface it in their summaries.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Lines the most recent :meth:`load` skipped as truncated.
        self.skipped_lines = 0

    def write(self, records: Iterable[RunRecord]) -> Path:
        """Atomically replace the file's contents with ``records``."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(results_header(), sort_keys=True) + "\n")
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return self.path

    def extend(self, records: Iterable[RunRecord]) -> Path:
        """Durably append ``records`` to the file, creating it if needed.

        If a previous writer died mid-line (file not newline-terminated),
        the partial trailing line is repaired *before* appending —
        otherwise the new first record would merge into it and corrupt
        the file for every later read.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_truncated_tail()
        # A brand-new (or empty) file gets the same header line ``write``
        # emits, so the two creation paths produce identical files.
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        with self.path.open("a", encoding="utf-8") as handle:
            if fresh:
                handle.write(
                    json.dumps(results_header(), sort_keys=True) + "\n"
                )
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return self.path

    def _repair_truncated_tail(self) -> None:
        """Make an existing file newline-terminated before appending.

        A trailing fragment that parses as JSON (e.g. a hand-edited file
        merely missing its final newline) is kept and terminated; one
        that does not — the crash artifact ``load`` would skip — is cut.
        """
        if not self.path.exists():
            return
        with self.path.open("rb+") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read()
            cut = data.rfind(b"\n") + 1
            fragment = data[cut:]
            try:
                json.loads(fragment.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                warnings.warn(
                    f"{self.path}: dropping truncated trailing record "
                    "before append (interrupted writer?)",
                    stacklevel=3,
                )
                handle.truncate(cut)
            else:
                handle.write(b"\n")

    def load(self) -> List[RunRecord]:
        """All records in file order (tolerating a truncated final line).

        Streams through :func:`~repro.telemetry.replay.iter_jsonl_payloads`,
        the shared crash-tolerant reader: malformed interior lines raise
        with their location, a truncated trailing line (interrupted
        writer) is skipped with a warning.
        """
        from ..telemetry.replay import iter_jsonl_payloads

        self.skipped_lines = 0

        def on_skip(line_no: int) -> None:
            self.skipped_lines += 1
            key = str(self.path.resolve())
            if key not in _TRUNCATION_WARNED:
                _TRUNCATION_WARNED.add(key)
                warnings.warn(
                    f"{self.path}:{line_no}: truncated trailing record "
                    "skipped (interrupted writer?)",
                    stacklevel=3,
                )

        records: List[RunRecord] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line_no, payload in iter_jsonl_payloads(
                handle, self.path, what="record", on_skip=on_skip
            ):
                if line_no == 1 and is_results_header(payload):
                    continue
                try:
                    records.append(RunRecord.from_dict(payload))
                except ValueError as exc:
                    raise ValueError(
                        f"{self.path}:{line_no}: malformed record ({exc})"
                    ) from None
        return records


def load_records(path: Union[str, Path]) -> List[RunRecord]:
    """Convenience loader used by the CLI ``replay`` command.

    Accepts both on-disk formats: plain results JSONL and the SQLite
    event store (sniffed by suffix or file magic).
    """
    from ..store import is_sqlite_path, open_store  # lazy: avoids a cycle

    if is_sqlite_path(path):
        with open_store(path, backend="sqlite") as store:
            return store.load()
    return ResultsStore(path).load()


def merged_response_summary(records: Iterable[RunRecord]):
    """Pooled response summary of many records.

    When *every* record carries raw samples the pool is an exact
    :class:`~repro.metrics.response.ResponseStats`; otherwise the shards'
    digests merge into one :class:`ResponseDigest` — O(1) memory instead
    of concatenating per-request lists.  Both expose the same ``count`` /
    ``mean()`` / ``percentile()`` surface.
    """
    records = list(records)
    # A record is "raw-carrying" when it has samples — or nothing at all
    # (a shard that completed zero requests constrains neither mode).
    # Only a digest-without-samples record forces the digest path, so
    # --raw-samples runs stay exact even when one shard came up empty.
    if records and all(
        r.response_times_ms or not r.response_digest for r in records
    ):
        from ..metrics.response import ResponseStats  # lazy: avoids a cycle

        pooled = ResponseStats()
        for record in records:
            pooled.extend(record.response_times_ms)
        return pooled
    merged = ResponseDigest()
    for record in records:
        if record.response_times_ms:
            merged.extend(record.response_times_ms)
        else:
            digest = record.digest()
            if digest is not None:
                merged.merge(digest)
    return merged


def group_by_system(records: Iterable[RunRecord]) -> Dict[str, List[RunRecord]]:
    """Records keyed by system, each list ordered by (seed, sequence)."""
    grouped: Dict[str, List[RunRecord]] = {}
    for record in records:
        grouped.setdefault(record.system, []).append(record)
    for runs in grouped.values():
        runs.sort(key=lambda r: (r.condition, r.seed, r.sequence_index))
    return grouped
