"""Persisted per-run records: the campaign subsystem's results layer.

Every campaign cell produces one :class:`RunRecord` — response samples,
scheduler counters, makespan and a parameter fingerprint — serialized as
one JSON object per line (JSONL) under ``results/``.  Records are the
contract between simulation and reporting: the figure modules and
``python -m repro replay`` consume records, so any plot can be re-rendered
without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import MISSING, asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Union

from ..config import SystemParameters

#: Bumped whenever the on-disk record shape changes incompatibly.
SCHEMA_VERSION = 1

#: Counter names copied off ``SchedulerStats`` into every record.
COUNTER_FIELDS = (
    "arrivals",
    "completions",
    "pr_count",
    "pr_blocked",
    "pr_wait_ms",
    "launches",
    "launch_blocked",
    "launch_wait_ms",
    "preemptions",
    "migrations_out",
)


def fingerprint_parameters(params: SystemParameters) -> str:
    """A short stable digest of a full parameter set.

    Two records compare as "same configuration" iff their fingerprints
    match, so aggregation across files can refuse to mix incompatible runs.
    """
    payload = json.dumps(asdict(params), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


@dataclass
class RunRecord:
    """Outcome of one simulated (system × sequence × seed) campaign cell."""

    scenario: str
    system: str
    condition: str
    sequence_index: int
    seed: int
    n_apps: int
    makespan_ms: float
    response_times_ms: List[float] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    fingerprint: str = ""
    #: Fleet shard that produced this record; -1 for non-fleet cells.
    shard: int = -1
    #: Time-weighted utilization aggregates of the run (occupied-slot and
    #: whole-fabric LUT/FF means plus the elapsed weight for rollups).
    utilization: Dict[str, float] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunRecord":
        schema = payload.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"record schema {schema} not supported (expected {SCHEMA_VERSION})"
            )
        fields = cls.__dataclass_fields__
        required = {
            name
            for name, f in fields.items()
            if f.default is MISSING and f.default_factory is MISSING
        }
        missing = sorted(required - payload.keys())
        if missing:
            raise ValueError(f"record is missing fields: {', '.join(missing)}")
        return cls(**{k: v for k, v in payload.items() if k in fields})

    def mean_response_ms(self) -> float:
        if not self.response_times_ms:
            raise ValueError(f"record {self.scenario}/{self.system} has no samples")
        return sum(self.response_times_ms) / len(self.response_times_ms)


class ResultsStore:
    """Append-oriented JSONL store for :class:`RunRecord` files."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, records: Iterable[RunRecord]) -> Path:
        """Replace the file's contents with ``records``."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return self.path

    def extend(self, records: Iterable[RunRecord]) -> Path:
        """Append ``records`` to the file, creating it if needed."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return self.path

    def load(self) -> List[RunRecord]:
        """All records in file order."""
        records: List[RunRecord] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    records.append(RunRecord.from_dict(payload))
                except (json.JSONDecodeError, ValueError) as exc:
                    raise ValueError(
                        f"{self.path}:{line_no}: malformed record ({exc})"
                    ) from None
        return records


def load_records(path: Union[str, Path]) -> List[RunRecord]:
    """Convenience loader used by the CLI ``replay`` command."""
    return ResultsStore(path).load()


def group_by_system(records: Iterable[RunRecord]) -> Dict[str, List[RunRecord]]:
    """Records keyed by system, each list ordered by (seed, sequence)."""
    grouped: Dict[str, List[RunRecord]] = {}
    for record in records:
        grouped.setdefault(record.system, []).append(record)
    for runs in grouped.values():
        runs.sort(key=lambda r: (r.condition, r.seed, r.sequence_index))
    return grouped
