"""Campaign subsystem: registry-driven scenarios, parallel execution,
persisted results.

The experiment stack (``repro.experiments``, the figure modules, the CLI
and the benches) is layered on top of this package:

* :mod:`repro.campaign.scenario` — declarative :class:`Scenario` specs and
  the decorator-based system/scenario registries.
* :mod:`repro.campaign.backend` — the simulation core plus serial and
  ``multiprocessing`` execution backends.
* :mod:`repro.campaign.results` — per-run :class:`RunRecord` persistence
  (JSONL under ``results/``) consumed by reporting and replay.
* :mod:`repro.campaign.runner` — :class:`CampaignRunner`, tying the three
  together.

Durable persistence beyond the plain JSONL file — snapshots, resumable
campaigns, the SQLite recorder, incremental report projections — lives
in :mod:`repro.store`; the runner and :func:`load_records` route through
it when those features are requested (or a SQLite path is given), and
stay byte-identical to the legacy path otherwise.
"""

from .backend import (
    CampaignCell,
    DEFAULT_HORIZON_MS,
    DrainError,
    ProcessBackend,
    SerialBackend,
    SimulationOutcome,
    execute_cell,
    failure_record,
    make_backend,
    simulate_run,
)
from .results import (
    COUNTER_FIELDS,
    RESULTS_FILE_SCHEMA,
    ResultsStore,
    RunRecord,
    SCHEMA_VERSION,
    fingerprint_parameters,
    group_by_system,
    is_results_header,
    load_records,
    results_header,
)
from .runner import CampaignRunner
from .scenario import (
    SCENARIOS,
    SYSTEM_REGISTRY,
    Scenario,
    SystemSpec,
    get_scenario,
    get_system,
    register_scenario,
    register_system,
    scenario_names,
    system_names,
)

__all__ = [
    "COUNTER_FIELDS",
    "CampaignCell",
    "CampaignRunner",
    "DEFAULT_HORIZON_MS",
    "DrainError",
    "ProcessBackend",
    "RESULTS_FILE_SCHEMA",
    "ResultsStore",
    "RunRecord",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "SYSTEM_REGISTRY",
    "Scenario",
    "SerialBackend",
    "SimulationOutcome",
    "SystemSpec",
    "execute_cell",
    "failure_record",
    "fingerprint_parameters",
    "get_scenario",
    "get_system",
    "group_by_system",
    "is_results_header",
    "load_records",
    "make_backend",
    "results_header",
    "register_scenario",
    "register_system",
    "scenario_names",
    "simulate_run",
    "system_names",
]
