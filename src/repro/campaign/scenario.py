"""Declarative scenario and system registries.

The six evaluated systems (Fig. 5's legend) and every runnable scenario
are registered here instead of being hardcoded in the experiment modules.
A *system* is a scheduler factory plus its board configuration; a
*scenario* is a frozen spec of what to simulate — systems, workload,
seeds and parameter overrides — that the campaign runner enumerates into
(system × sequence × seed) cells.

Registration is decorator-based, following the benchmark-registry idiom::

    @register_system("MyPolicy", BoardConfig.ONLY_LITTLE)
    class MyPolicyScheduler(OnBoardScheduler): ...

    @register_scenario
    def my_sweep() -> Scenario:
        return Scenario(name="my-sweep", workload=WorkloadSpec(...))
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..core.versaslot import VersaSlotBigLittle, VersaSlotOnlyLittle
from ..fpga.slots import BoardConfig
from ..schedulers.baseline import BaselineScheduler
from ..schedulers.fcfs import FCFSScheduler
from ..schedulers.nimblock import NimblockScheduler
from ..schedulers.round_robin import RoundRobinScheduler
from ..workloads.generator import Condition, WorkloadSpec

# ---------------------------------------------------------------------------
# System registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemSpec:
    """One evaluated system: scheduler factory + board configuration."""

    name: str
    factory: Callable
    board_config: BoardConfig


#: Registered systems in legend order (insertion-ordered dict).
SYSTEM_REGISTRY: Dict[str, SystemSpec] = {}


def register_system(name: str, board_config: BoardConfig) -> Callable:
    """Class/factory decorator adding a system to the registry."""

    def deco(factory: Callable) -> Callable:
        if name in SYSTEM_REGISTRY:
            raise ValueError(f"system {name!r} is already registered")
        SYSTEM_REGISTRY[name] = SystemSpec(name, factory, board_config)
        return factory

    return deco


def get_system(name: str) -> SystemSpec:
    """Look up a registered system; KeyError names the alternatives."""
    try:
        return SYSTEM_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; available: {', '.join(SYSTEM_REGISTRY)}"
        ) from None


def system_names() -> List[str]:
    return list(SYSTEM_REGISTRY)


# The paper's six systems, in Fig. 5 legend order.
register_system("Baseline", BoardConfig.ONLY_LITTLE)(BaselineScheduler)
register_system("FCFS", BoardConfig.ONLY_LITTLE)(FCFSScheduler)
register_system("RR", BoardConfig.ONLY_LITTLE)(RoundRobinScheduler)
register_system("Nimblock", BoardConfig.ONLY_LITTLE)(NimblockScheduler)
register_system("VersaSlot-OL", BoardConfig.ONLY_LITTLE)(VersaSlotOnlyLittle)
register_system("VersaSlot-BL", BoardConfig.BIG_LITTLE)(VersaSlotBigLittle)


# ---------------------------------------------------------------------------
# Scenario specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A declarative, picklable campaign specification."""

    name: str
    workload: WorkloadSpec
    #: Systems to evaluate; empty means every registered system.
    systems: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = (1,)
    #: ``SystemParameters`` field overrides, stored as sorted pairs so the
    #: scenario stays hashable; pass a mapping, it is normalized here.
    overrides: Tuple[Tuple[str, float], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "systems", tuple(self.systems))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        pairs = (
            sorted(self.overrides.items())
            if isinstance(self.overrides, Mapping)
            else sorted(tuple(pair) for pair in self.overrides)
        )
        object.__setattr__(self, "overrides", tuple(pairs))
        if not self.seeds:
            raise ValueError(f"scenario {self.name!r} has no seeds")

    def system_names(self) -> Tuple[str, ...]:
        return self.systems if self.systems else tuple(SYSTEM_REGISTRY)

    def parameters(self, base: Optional[SystemParameters] = None) -> SystemParameters:
        """The resolved parameter set (base + this scenario's overrides)."""
        resolved = base if base is not None else DEFAULT_PARAMETERS
        if self.overrides:
            resolved = resolved.with_overrides(**dict(self.overrides))
        return resolved

    def scaled(
        self,
        sequence_count: Optional[int] = None,
        n_apps: Optional[int] = None,
        seeds: Optional[Iterable[int]] = None,
    ) -> "Scenario":
        """A copy with the workload scale / seed set adjusted (CLI knobs)."""
        workload = self.workload
        changes = {}
        if sequence_count is not None:
            changes["sequence_count"] = sequence_count
        if n_apps is not None:
            changes["n_apps"] = n_apps
        if changes:
            workload = dataclasses.replace(workload, **changes)
        return dataclasses.replace(
            self,
            workload=workload,
            seeds=tuple(seeds) if seeds is not None else self.seeds,
        )

    def cell_count(self) -> int:
        return (
            len(self.system_names())
            * self.workload.sequence_count
            * len(self.seeds)
        )


#: Registered scenarios by name (insertion-ordered dict).
SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(obj: Union[Scenario, Callable[[], Scenario]]):
    """Register a :class:`Scenario`, directly or via a factory function.

    As a decorator on a zero-argument factory the scenario is built and
    registered at import time and the factory is returned unchanged.
    """
    scenario = obj if isinstance(obj, Scenario) else obj()
    if not isinstance(scenario, Scenario):
        raise TypeError(f"expected a Scenario, got {type(scenario).__name__}")
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return obj


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None


def scenario_names() -> List[str]:
    return list(SCENARIOS)


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------


@register_scenario
def _smoke() -> Scenario:
    return Scenario(
        name="smoke",
        workload=WorkloadSpec(Condition.STRESS, n_apps=4, sequence_count=1),
        systems=("Baseline", "Nimblock", "VersaSlot-OL"),
        description="Tiny three-system campaign for CI smoke runs.",
    )


for _condition in (
    Condition.LOOSE,
    Condition.STANDARD,
    Condition.STRESS,
    Condition.REAL_TIME,
):
    register_scenario(
        Scenario(
            name=f"fig5-{_condition.label.lower()}",
            workload=WorkloadSpec(_condition, n_apps=20, sequence_count=2),
            description=(
                f"Fig. 5 column: all six systems under the "
                f"{_condition.label} interval (paper scale: --sequences 10)."
            ),
        )
    )


@register_scenario
def _stress_scale() -> Scenario:
    return Scenario(
        name="stress-scale",
        workload=WorkloadSpec(Condition.STRESS, n_apps=40, sequence_count=4),
        systems=("Nimblock", "VersaSlot-OL", "VersaSlot-BL"),
        seeds=(1, 2),
        description="Heavy-traffic stress sweep of the pipelined systems.",
    )


@register_scenario
def _pr_fault_injection() -> Scenario:
    return Scenario(
        name="pr-fault-injection",
        workload=WorkloadSpec(Condition.STANDARD, n_apps=12, sequence_count=2),
        systems=("Nimblock", "VersaSlot-OL", "VersaSlot-BL"),
        overrides={"pr_failure_rate": 0.02},
        description="Standard interval with 2% DFX verification failures.",
    )
