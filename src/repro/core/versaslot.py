"""The VersaSlot schedulers (the paper's primary contribution).

Two variants share the dual-core machinery (scheduler on core 0, PR server
on core 1, asynchronous PR requests via the on-chip-memory queue):

* :class:`VersaSlotOnlyLittle` — uniform Little slots, Nimblock-style
  ILP-optimal allocation with preemption, but with PR decoupled from
  scheduling.  This isolates the dual-core contribution.
* :class:`VersaSlotBigLittle` — the full Big.Little architecture:
  Algorithm 1 allocation (binding/rebinding + redistribution), online
  3-in-1 bundling with the serial/parallel criterion, and preemption
  restricted to Little slots (apps never span both kinds, and
  redistribution already prevents monopolization).
"""

from __future__ import annotations

from ..apps.application import BundleSpec
from ..config import DEFAULT_PARAMETERS, SystemParameters
from ..fpga.board import FPGABoard
from ..fpga.slots import BoardConfig
from ..sim import NULL_TRACER, Tracer
from ..schedulers.base import OnBoardScheduler
from ..schedulers.ilp import optimal_big_slots, optimal_little_slots
from ..schedulers.nimblock import NimblockScheduler
from ..schedulers.runtime import AppRun
from .allocation import allocate_big_little
from .bundling import serial_preferred
from .scheduling import dispatch_order


class VersaSlotOnlyLittle(NimblockScheduler):
    """VersaSlot on an Only.Little board: dual-core decoupled PR."""

    __slots__ = ()

    name = "VersaSlot-OL"

    def __init__(
        self,
        board: FPGABoard,
        params: SystemParameters = DEFAULT_PARAMETERS,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(board, params, tracer=tracer, dual_core=True)


class VersaSlotBigLittle(OnBoardScheduler):
    """VersaSlot on a Big.Little board: Algorithm 1 + 2 with bundling.

    ``rebinding`` / ``redistribution`` expose Algorithm 1's two optional
    phases for ablation (DESIGN.md); both default on, as in the paper.
    """

    __slots__ = ("rebinding", "redistribution", "_opt_big_cb", "_opt_little_cb")

    name = "VersaSlot-BL"

    def __init__(
        self,
        board: FPGABoard,
        params: SystemParameters = DEFAULT_PARAMETERS,
        tracer: Tracer = NULL_TRACER,
        rebinding: bool = True,
        redistribution: bool = True,
    ) -> None:
        if board.big_slot_count == 0:
            raise ValueError(
                f"{type(self).__name__} needs a Big.Little board, got "
                f"{board.config.value}"
            )
        super().__init__(board, params, dual_core=True, preemption=True, tracer=tracer)
        self.rebinding = rebinding
        self.redistribution = redistribution
        # Bound once: allocate() runs on every pass, and creating the two
        # method objects per call shows up in campaign profiles.
        self._opt_big_cb = self._optimal_big
        self._opt_little_cb = self._optimal_little

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def allocate(self) -> None:
        allocate_big_little(
            self,
            self._opt_big_cb,
            self._opt_little_cb,
            rebinding=self.rebinding,
            redistribution=self.redistribution,
        )

    def _optimal_big(self, app: AppRun) -> int:
        return optimal_big_slots(
            app.spec, app.batch, self.params.big_pr_ms, self.big_total
        )

    def _optimal_little(self, app: AppRun) -> int:
        return optimal_little_slots(
            app.spec, app.batch, self.params.little_pr_ms, self.little_total
        )

    # ------------------------------------------------------------------
    # Algorithm 2: online bundling decision and dispatch ordering
    # ------------------------------------------------------------------
    def choose_serial_bundle(self, app_run: AppRun, bundle: BundleSpec) -> bool:
        # Dispatch only ever hands us bundles from this spec (validated at
        # construction), so index the frozen time table directly.
        times = app_run.spec._bundle_times[bundle.index]
        return serial_preferred(times, app_run.batch)

    def dispatch_order(self):
        """Big-bound apps first: Big slots cannot be back-filled by tasks."""
        return dispatch_order(self)

    # Preemption: Big-bound apps are exempt (they cannot be preempted
    # without violating the all-tasks-in-Big constraint); the base helper
    # already only targets Little-slot task runs.


def make_versaslot(
    board: FPGABoard,
    params: SystemParameters = DEFAULT_PARAMETERS,
    tracer: Tracer = NULL_TRACER,
) -> OnBoardScheduler:
    """Instantiate the VersaSlot variant matching the board configuration."""
    if board.config is BoardConfig.BIG_LITTLE:
        return VersaSlotBigLittle(board, params, tracer=tracer)
    return VersaSlotOnlyLittle(board, params, tracer=tracer)
