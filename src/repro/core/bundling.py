"""3-in-1 task bundling (the Big-slot execution model).

A Big slot hosts three consecutive tasks loaded as one bitstream.  At
runtime the scheduler chooses between the two internal organizations
(Fig. 3 of the paper):

* **parallel** — the members form an internal pipeline; each batch item
  costs ``Tmax`` after the fill, so the batch takes ``Tmax * (B + 2)``;
* **serial** — members run whole batches back to back: ``sum(T) * B``.

The paper's criterion: serial is preferable when
``Tmax * (B + 2) > sum(T) * B``.  Serial avoids the idle sub-slots a
lop-sided parallel pipeline leaves (the grey cells of Fig. 3) at the cost
of losing overlap — worth it for small batches or skewed member latencies.

The module also provides the bundle-size tiling used by the ablation bench
(the paper fixes the size at 3; we can evaluate 2 and 4 as well).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..apps.application import BUNDLE_SIZE


def parallel_time_ms(exec_times_ms: Sequence[float], batch_size: int) -> float:
    """Batch latency of the parallel (internal pipeline) organization."""
    _validate(exec_times_ms, batch_size)
    return max(exec_times_ms) * (batch_size + len(exec_times_ms) - 1)


def serial_time_ms(exec_times_ms: Sequence[float], batch_size: int) -> float:
    """Batch latency of the serial organization."""
    _validate(exec_times_ms, batch_size)
    return sum(exec_times_ms) * batch_size


def serial_preferred(exec_times_ms: Sequence[float], batch_size: int) -> bool:
    """The paper's runtime criterion: ``Tmax * (B + 2) > sum(T) * B``.

    Written for the 3-member case (hence the ``+ 2`` pipeline-fill term);
    generalizes to other bundle sizes via ``len - 1``.
    """
    _validate(exec_times_ms, batch_size)
    fill_steps = len(exec_times_ms) - 1
    parallel = max(exec_times_ms) * (batch_size + fill_steps)
    serial = sum(exec_times_ms) * batch_size
    return parallel > serial


def idle_subslot_cycles(exec_times_ms: Sequence[float], batch_size: int) -> float:
    """Total idle time across the bundle's sub-slots in parallel mode.

    Each pipeline step lasts ``Tmax``; a member with latency ``T_i`` idles
    ``Tmax - T_i`` per step.  This is the quantity that grows with bundle
    size and motivates fixing the size at 3.
    """
    _validate(exec_times_ms, batch_size)
    t_max = max(exec_times_ms)
    steps = batch_size + len(exec_times_ms) - 1
    return sum(t_max - t for t in exec_times_ms) * steps


def bundle_tiling(task_count: int, bundle_size: int = BUNDLE_SIZE) -> List[Tuple[int, ...]]:
    """Tile ``task_count`` pipeline stages into consecutive bundles.

    Raises when the task count does not tile exactly — the offline flow
    only bundles applications whose partition fits.
    """
    if bundle_size < 1:
        raise ValueError(f"bundle size must be >= 1, got {bundle_size}")
    if task_count % bundle_size != 0:
        raise ValueError(
            f"{task_count} tasks do not tile into bundles of {bundle_size}"
        )
    return [
        tuple(range(start, start + bundle_size))
        for start in range(0, task_count, bundle_size)
    ]


def _validate(exec_times_ms: Sequence[float], batch_size: int) -> None:
    if not exec_times_ms:
        raise ValueError("a bundle needs at least one member task")
    if any(t <= 0 for t in exec_times_ms):
        raise ValueError(f"member latencies must be positive: {exec_times_ms}")
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
