"""Algorithm 1: slot allocation for the Big.Little architecture.

The allocator runs on every scheduler pass and performs, in order:

1. **Availability check** (lines 1–3) — Big slots are *reserved* by the
   unfinished bundles of applications already bound to them, so admission
   stops once the reservation covers the physical slots.
2. **Rebinding** (lines 4–6) — applications granted Little slots that have
   not started executing are unbound and returned to the waiting list, so
   a newly freed Big slot can pick them up (load balancing toward Big).
3. **Primary allocation** (lines 7–13) — waiting applications get Big
   slots first (bundleable apps), then Little slots at their ILP-derived
   optimal count ``O_L``.
4. **Redistribution** (lines 14–18) — leftover Little slots are spread
   over already-bound applications, front of the runnable queue first, up
   to their remaining ready-task count.  This avoids slot idling.

Applications bound to Big slots complete entirely there (no mixed
allocations), which prevents Big-slot blocking through cross-kind task
dependencies — the constraint the paper states at the end of §III-C1.

The function is deliberately pure policy: it manipulates only the
``alloc_big``/``alloc_little``/``in_big`` fields and the three queues of a
scheduler-like object, so it is unit-testable with fakes.
"""

from __future__ import annotations

from typing import Callable

from .runtime_view import AppLike, SchedulerLike


def allocate_big_little(
    sched: SchedulerLike,
    optimal_big: Callable[[AppLike], int],
    optimal_little: Callable[[AppLike], int],
    rebinding: bool = True,
    redistribution: bool = True,
) -> None:
    """Run one Algorithm-1 allocation pass over ``sched``.

    ``rebinding`` and ``redistribution`` disable lines 4–6 and 14–18
    respectively — the two design choices DESIGN.md marks as ablation
    targets (load balancing toward Big slots, and leftover-slot spreading).
    """
    big_total = sched.big_total
    little_total = sched.little_total

    # Line 1: Big slots remaining after reservations by bound apps (one
    # reservation per bound app with work left — apps time-share the Big
    # slots beyond that, mirroring the paper's per-app decrement).
    reserved_big = 0
    for app in sched.s_big:
        if app.unfinished_bundle_count() > 0:
            reserved_big += 1
    b_avail = big_total - reserved_big
    l_idle = little_total - sched.committed_little()

    # Lines 2-3: nothing to hand out.
    if b_avail <= 0 and l_idle <= 0:
        return

    # Lines 4-6: unbind not-yet-started Little apps for rebinding.
    if rebinding and b_avail > 0:
        rebound = False
        for app in list(sched.s_little):
            if not app.started and app.spec.can_bundle:
                sched.s_little.remove(app)
                app.alloc_little = 0
                sched.c_wait.append(app)
                rebound = True
        if rebound:
            # Keep the waiting list in arrival order after rebinding.
            sched.c_wait.sort(key=lambda app: app.inst.app_id)

    # Line 7: Little slots not yet promised to bound apps.
    promised = 0
    for app in sched.s_little:
        allocated = app.alloc_little
        unfinished = app.unfinished_task_count()
        promised += allocated if allocated < unfinished else unfinished
    l_left = little_total - promised

    # Lines 8-13: primary allocation for the waiting list.
    for app in list(sched.c_wait):
        # Lines 8-10: binding, Big slots first for bundleable apps.
        if b_avail > 0 and app.spec.can_bundle:
            app.alloc_big = max(1, optimal_big(app))
            app.alloc_little = 0
            app.in_big = True
            sched.c_wait.remove(app)
            sched.s_big.append(app)
            b_avail -= 1
            continue
        # Lines 11-13: binding with Little slots at the optimal count.
        if l_idle > 0 and l_left > 0:
            grant = min(max(1, optimal_little(app)), l_left)
            app.alloc_little = grant
            app.in_big = False
            sched.c_wait.remove(app)
            sched.s_little.append(app)
            l_left -= grant

    # Lines 14-18: redistribute leftover Little slots.
    if redistribution and l_left > 0:
        for app in sched.s_little:
            if l_left <= 0:
                break
            delta = app.unfinished_task_count() - app.alloc_little
            if delta <= 0:
                continue
            grant = min(l_left, delta)
            app.alloc_little += grant
            l_left -= grant
