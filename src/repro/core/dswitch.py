"""The D_switch performance-degradation metric (Eq. 1 of the paper).

::

    D_switch = (N_blocked_tasks / N_PR) * (N_apps / N_batch),  0 < D < 1

* ``N_blocked_tasks / N_PR`` measures the *current* PR contention degree:
  how many of the window's PR-related operations blocked something.
* ``N_apps / N_batch`` estimates *future* conflicts from the candidate
  queue: many apps with small batches → frequent PR → high risk; the
  worst case (one slot, batch 1 each) drives the ratio to 1.

The metric is recalculated every ``n`` updates of the application
candidate queue (arrivals and completions), as in the paper's Fig. 8
(``n = 4``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..schedulers.base import OnBoardScheduler


@dataclass(frozen=True)
class DSwitchSample:
    """One recalculation of the metric."""

    time: float
    value: float
    completed_apps: int
    window_pr: int
    window_blocked: int
    candidate_apps: int
    candidate_batch: int


@dataclass
class DSwitchCalculator:
    """Windowed D_switch computation bound to one board scheduler.

    Register :meth:`on_candidate_update` as a candidate listener; every
    ``period`` updates it recomputes the metric from the scheduler's
    windowed blocked/PR counters and the candidate queue, and appends a
    :class:`DSwitchSample`.
    """

    period: int = 4
    #: Minimum PR operations in the window before the ratio is trusted; an
    #: underfilled window keeps accumulating instead of emitting a noisy
    #: sample (a 2-of-3-blocked burst right after start-up would otherwise
    #: cross T1 spuriously).
    min_window_pr: int = 6
    samples: List[DSwitchSample] = field(default_factory=list)
    _updates: int = 0

    def on_candidate_update(self, sched: OnBoardScheduler) -> Optional[DSwitchSample]:
        """Candidate-queue update hook; returns a sample every ``period``."""
        self._updates += 1
        if self._updates % self.period != 0:
            return None
        if sched.stats.window_pr < self.min_window_pr:
            return None
        return self.compute(sched)

    def compute(self, sched: OnBoardScheduler) -> DSwitchSample:
        """Recalculate the metric now and reset the window counters."""
        window_pr, window_blocked = sched.stats.reset_window()
        candidates = sched.active_apps()
        n_apps = len(candidates)
        n_batch = sum(app.batch for app in candidates)
        if window_pr <= 0 or n_batch <= 0:
            value = 0.0
        else:
            value = (window_blocked / window_pr) * (n_apps / n_batch)
        value = min(max(value, 0.0), 1.0)
        sample = DSwitchSample(
            time=sched.engine.now,
            value=value,
            completed_apps=sched.stats.completions,
            window_pr=window_pr,
            window_blocked=window_blocked,
            candidate_apps=n_apps,
            candidate_batch=n_batch,
        )
        self.samples.append(sample)
        return sample

    @property
    def latest(self) -> Optional[DSwitchSample]:
        return self.samples[-1] if self.samples else None
