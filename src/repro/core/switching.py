"""The Schmitt-trigger switch loop with buffer-zone pre-warming (Fig. 4).

Two thresholds bound a hysteresis buffer zone:

* ``D_switch`` rising past ``T1`` → switch Only.Little → Big.Little
  (contention too high; bundles will absorb PR traffic);
* ``D_switch`` falling past ``T2`` → switch Big.Little → Only.Little
  (contention low; finer slots admit more applications).

While the metric sits inside the buffer zone, the loop *anticipates* the
direction of change from the metric's slope and asks the cluster to
pre-warm the corresponding standby board (pre-configure the static region,
stage bitstreams onto its SD card) so the eventual migration is seamless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..fpga.slots import BoardConfig


class SwitchDecision(Enum):
    """Outcome of one trigger update."""

    HOLD = "hold"
    TO_BIG_LITTLE = "to_big_little"
    TO_ONLY_LITTLE = "to_only_little"


@dataclass(frozen=True)
class TriggerEvent:
    """A recorded trigger transition or pre-warm request."""

    time: float
    value: float
    decision: SwitchDecision
    prewarm: Optional[BoardConfig]


@dataclass
class SchmittTrigger:
    """Hysteresis switch loop over the D_switch metric."""

    threshold_up: float = 0.1
    threshold_down: float = 0.0125
    mode: BoardConfig = BoardConfig.ONLY_LITTLE
    history: List[TriggerEvent] = field(default_factory=list)
    _previous_value: Optional[float] = None

    def __post_init__(self) -> None:
        if not (0.0 < self.threshold_down < self.threshold_up < 1.0):
            raise ValueError(
                f"need 0 < T2 ({self.threshold_down}) < T1 ({self.threshold_up}) < 1"
            )

    def in_buffer_zone(self, value: float) -> bool:
        """True when the metric sits between the two thresholds."""
        return self.threshold_down < value < self.threshold_up

    def anticipate(self, value: float) -> Optional[BoardConfig]:
        """Pre-warm target while inside the buffer zone, from the slope."""
        if not self.in_buffer_zone(value) or self._previous_value is None:
            return None
        if value > self._previous_value and self.mode is BoardConfig.ONLY_LITTLE:
            return BoardConfig.BIG_LITTLE
        if value < self._previous_value and self.mode is BoardConfig.BIG_LITTLE:
            return BoardConfig.ONLY_LITTLE
        return None

    def update(self, time: float, value: float) -> TriggerEvent:
        """Feed one D_switch sample; returns the decision (and pre-warm hint)."""
        if not (0.0 <= value <= 1.0):
            raise ValueError(f"D_switch must be within [0, 1], got {value}")
        decision = SwitchDecision.HOLD
        if self.mode is BoardConfig.ONLY_LITTLE and value >= self.threshold_up:
            self.mode = BoardConfig.BIG_LITTLE
            decision = SwitchDecision.TO_BIG_LITTLE
        elif self.mode is BoardConfig.BIG_LITTLE and value <= self.threshold_down:
            self.mode = BoardConfig.ONLY_LITTLE
            decision = SwitchDecision.TO_ONLY_LITTLE
        prewarm = self.anticipate(value) if decision is SwitchDecision.HOLD else None
        self._previous_value = value
        event = TriggerEvent(time=time, value=value, decision=decision, prewarm=prewarm)
        self.history.append(event)
        return event

    @property
    def switch_count(self) -> int:
        """Number of actual transitions so far."""
        return sum(
            1 for event in self.history if event.decision is not SwitchDecision.HOLD
        )
