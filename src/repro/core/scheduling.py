"""Algorithm 2 helpers: ready-queue introspection and dispatch ordering.

The executable parts of Algorithm 2 live in the scheduler machinery:

* lines 1–3 (ready-list upkeep) — :meth:`AppRun.next_little_payloads` /
  :meth:`AppRun.next_big_payloads` compute the ready set incrementally;
* lines 4–7 (online 3-in-1 bundling) — bundles replace their member tasks
  in the ready list by construction, and the serial/parallel mode is
  chosen at dispatch via :func:`repro.core.bundling.serial_preferred`;
* lines 8–12 (batch-execution launch) — task/bundle run processes launch
  items through the scheduler core's launch gate;
* lines 13–19 (PR dispatch within the allocation ``R_Ai``) —
  :meth:`OnBoardScheduler.plan_dispatch`, with asynchronous requests to
  the PR server in dual-core mode.

This module provides the pure views used by tests, the contention monitor
and debugging tools: the materialized ready queue ``Q_T`` and the dispatch
ordering (Big-bound applications first, then arrival order — Big slots
are the scarcer resource and idle Big slots cannot be back-filled by
Little tasks).
"""

from __future__ import annotations

from typing import List, Tuple, Union

from ..apps.application import BundleSpec, TaskSpec
from ..schedulers.base import OnBoardScheduler
from ..schedulers.runtime import AppRun


def ready_task_queue(scheduler: OnBoardScheduler) -> List[Tuple[AppRun, Union[TaskSpec, BundleSpec]]]:
    """Materialize Q_T: every (app, payload) awaiting a slot, in order.

    Big-bound applications contribute their unloaded bundles; Little-bound
    (and unbound) applications contribute their unloaded tasks.
    """
    queue: List[Tuple[AppRun, Union[TaskSpec, BundleSpec]]] = []
    for app in dispatch_order(scheduler):
        if app.in_big:
            queue.extend((app, bundle) for bundle in app.next_big_payloads())
        else:
            queue.extend((app, task) for task in app.next_little_payloads())
    return queue


def dispatch_order(scheduler: OnBoardScheduler) -> List[AppRun]:
    """Dispatch priority: Big-bound apps first, then arrival order."""
    live = [app for app in scheduler.apps if not app.finished and not app.frozen]
    if len(live) < 2:
        return live
    # ``apps`` is appended in submission order, so ids are monotone on
    # every on-board path (only fleet migrate-in can re-insert an older
    # instance); a stable partition then equals the full sort at a
    # fraction of its cost — this runs on every scheduler pass.
    prev = -1
    for app in live:
        app_id = app.inst.app_id
        if app_id < prev:
            return sorted(live, key=lambda a: (not a.in_big, a.inst.app_id))
        prev = app_id
    big = [app for app in live if app.in_big]
    if not big or len(big) == len(live):
        return live
    big.extend(app for app in live if not app.in_big)
    return big


def pending_pr_payloads(scheduler: OnBoardScheduler) -> List[str]:
    """Payload names currently queued for (or undergoing) reconfiguration."""
    names: List[str] = [plan.payload.name for plan in scheduler.pr_queue.items()]
    for app in scheduler.apps:
        names.extend(sorted(app.pending_pr - set(names)))
    return names
