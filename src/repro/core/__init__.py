"""VersaSlot core: Big.Little allocation, bundling, D_switch, switch loop."""

from .allocation import allocate_big_little
from .bundling import (
    bundle_tiling,
    idle_subslot_cycles,
    parallel_time_ms,
    serial_preferred,
    serial_time_ms,
)
from .dswitch import DSwitchCalculator, DSwitchSample
from .scheduling import dispatch_order, pending_pr_payloads, ready_task_queue
from .switching import SchmittTrigger, SwitchDecision, TriggerEvent
from .versaslot import VersaSlotBigLittle, VersaSlotOnlyLittle, make_versaslot

__all__ = [
    "DSwitchCalculator",
    "DSwitchSample",
    "SchmittTrigger",
    "SwitchDecision",
    "TriggerEvent",
    "VersaSlotBigLittle",
    "VersaSlotOnlyLittle",
    "allocate_big_little",
    "bundle_tiling",
    "dispatch_order",
    "idle_subslot_cycles",
    "make_versaslot",
    "pending_pr_payloads",
    "ready_task_queue",
    "parallel_time_ms",
    "serial_preferred",
    "serial_time_ms",
]
