"""Structural typing for the allocation policy.

Algorithm 1 only needs a narrow view of the scheduler and its application
runs; these protocols document that surface and let the unit tests drive
the allocator with lightweight fakes instead of a full simulation.
"""

from __future__ import annotations

from typing import List, Protocol


class AppLike(Protocol):
    """The slice of :class:`~repro.schedulers.runtime.AppRun` Algorithm 1 uses."""

    alloc_big: int
    alloc_little: int
    in_big: bool
    started: bool

    @property
    def spec(self):  # ApplicationSpec-like: needs .can_bundle
        ...

    @property
    def inst(self):  # ApplicationInstance-like: needs .app_id
        ...

    def unfinished_task_count(self) -> int: ...

    def unfinished_bundle_count(self) -> int: ...


class SchedulerLike(Protocol):
    """The slice of :class:`~repro.schedulers.base.OnBoardScheduler` used."""

    big_total: int
    little_total: int
    c_wait: List[AppLike]
    s_big: List[AppLike]
    s_little: List[AppLike]

    def committed_little(self) -> int: ...
