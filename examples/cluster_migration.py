#!/usr/bin/env python
"""Cross-board switching with live migration (Fig. 8 scenario).

Drives a two-board cluster (one Only.Little board, one Big.Little board)
with a long workload whose congestion ramps up and relaxes.  The
contention monitor recomputes D_switch every four candidate-queue
updates; when the metric crosses T1 = 0.1 the Schmitt trigger fires a
live migration onto the pre-warmed Big.Little board.  Prints the metric
trace, the switch events with their overheads, and the three-mode
comparison against single-board runs.

Run with:  python examples/cluster_migration.py [n_apps]
"""

import sys

from repro.experiments import PAPER_SWITCH_OVERHEAD_MS, run_fig8


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    print(f"Running the switching cluster over {n_apps} applications ...\n")
    result = run_fig8(seed=1, n_apps=n_apps)

    print(result.trace())
    print()
    for index, time_ms in enumerate(result.switch_times_ms):
        print(f"switch #{index + 1} at t={time_ms:,.0f} ms")
    print(f"mean switching overhead: {result.mean_switch_overhead_ms:.2f} ms "
          f"(paper: {PAPER_SWITCH_OVERHEAD_MS:.2f} ms with pre-warming)")
    print()
    print(result.comparison())


if __name__ == "__main__":
    main()
