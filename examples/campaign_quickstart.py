#!/usr/bin/env python
"""Campaign quickstart: declare a scenario, run it in parallel, replay it.

Shows the three pieces of the campaign subsystem end-to-end:

1. declare a custom :class:`Scenario` (registry-style, with parameter
   overrides) instead of hand-rolling simulation loops;
2. execute its (system x sequence x seed) cells over the multiprocessing
   backend with per-worker isolation;
3. persist per-run records as JSONL and re-aggregate them without
   re-simulating.

Run with:  python examples/campaign_quickstart.py [--jobs N]
"""

import argparse
import tempfile
from pathlib import Path

from repro.campaign import CampaignRunner, ResultsStore, Scenario, load_records
from repro.metrics import summarize_records
from repro.workloads import Condition, WorkloadSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes (default: 2)")
    args = parser.parse_args()

    # 1. A declarative scenario: three systems, two Stress sequences,
    #    two seeds, with a slower PCAP than the ZCU216 default.
    scenario = Scenario(
        name="quickstart-slow-pcap",
        workload=WorkloadSpec(Condition.STRESS, n_apps=10, sequence_count=2),
        systems=("Nimblock", "VersaSlot-OL", "VersaSlot-BL"),
        seeds=(1, 2),
        overrides={"pcap_bandwidth_mbps": 100.0},
        description="Stress sweep with a derated configuration port",
    )
    print(f"Scenario {scenario.name!r}: {scenario.cell_count()} cells "
          f"({len(scenario.system_names())} systems x "
          f"{scenario.workload.sequence_count} sequences x "
          f"{len(scenario.seeds)} seeds)\n")

    # 2. Run the cells over worker processes, persisting as JSONL.
    out = Path(tempfile.mkdtemp()) / "quickstart.jsonl"
    runner = CampaignRunner(jobs=args.jobs, store=ResultsStore(out))
    records = runner.run(scenario)

    # 3. Aggregate from the persisted records — no re-simulation.
    print(summarize_records(load_records(out)))
    print(f"\n{len(records)} records persisted to {out}")


if __name__ == "__main__":
    main()
