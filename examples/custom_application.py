#!/usr/bin/env python
"""Bring your own application: the modelled offline flow end-to-end.

Shows how a downstream user adds a new accelerated application to the
system: partition a monolithic workload into Little-slot-sized tasks with
the HLS-style stepwise model, synthesize 3-in-1 bundles for Big slots,
record/replay the workload trace, and run it under two schedulers.

Run with:  python examples/custom_application.py
"""

import random

from repro import BoardConfig, Engine, FPGABoard
from repro.apps import ApplicationInstance, partition_workload
from repro.core import VersaSlotBigLittle
from repro.metrics import format_table
from repro.schedulers import NimblockScheduler


def main() -> None:
    rng = random.Random(2026)
    # 120 ms of monolithic compute -> Little-slot-sized, bundle-tileable tasks.
    app = partition_workload("MyKernel", total_work_ms=120.0, rng=rng)
    rows = [
        [task.name, task.exec_time_ms, task.usage.lut, task.usage.ff]
        for task in app.tasks
    ]
    print(format_table(["task", "exec (ms)", "LUT", "FF"], rows,
                       title=f"Offline flow output for {app.name!r}"))
    print(f"bundles: {[b.name for b in app.bundles]} "
          f"(Big-slot LUT usage: {[round(b.usage_big.lut, 3) for b in app.bundles]})\n")

    results = []
    for label, scheduler_cls, config in (
        ("Nimblock / Only.Little", NimblockScheduler, BoardConfig.ONLY_LITTLE),
        ("VersaSlot / Big.Little", VersaSlotBigLittle, BoardConfig.BIG_LITTLE),
    ):
        engine = Engine()
        board = FPGABoard(engine, config, name="byoa")
        scheduler = scheduler_cls(board)
        for offset in range(4):
            scheduler.submit(ApplicationInstance(app, 15, 0.0))
        engine.run()
        mean = sum(r.response_ms for r in scheduler.stats.responses) / 4
        results.append([label, mean, scheduler.stats.pr_count])

    print(format_table(
        ["system", "mean response (ms)", "PR count"], results,
        title="Four simultaneous instances of the custom application",
    ))


if __name__ == "__main__":
    main()
