#!/usr/bin/env python
"""Congestion sweep: Fig. 5 and Fig. 6 in miniature.

Compares all six evaluated systems (Baseline, FCFS, RR, Nimblock,
VersaSlot Only.Little, VersaSlot Big.Little) over the paper's four
congestion conditions, printing the relative response-time reduction and
the relative tail latencies next to the paper's values.  Uses two random
sequences per condition by default; pass an integer argument to change
that (the paper uses ten).

Run with:  python examples/congestion_sweep.py [sequences]
"""

import sys

from repro.experiments import run_fig5, run_fig6


def main() -> None:
    sequence_count = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    print(f"Running 6 systems x 4 conditions x {sequence_count} sequences "
          f"(20 apps each) ...\n")
    fig5 = run_fig5(seed=1, sequence_count=sequence_count)
    print(fig5.table())
    print()
    # Fig. 6 reuses Fig. 5's Standard/Stress/Real-time runs.
    fig6 = run_fig6(fig5_result=fig5)
    print(fig6.table())


if __name__ == "__main__":
    main()
