#!/usr/bin/env python
"""Congestion sweep: Fig. 5 and Fig. 6 in miniature.

Compares all six evaluated systems (Baseline, FCFS, RR, Nimblock,
VersaSlot Only.Little, VersaSlot Big.Little) over the paper's four
congestion conditions, printing the relative response-time reduction and
the relative tail latencies next to the paper's values.  Uses two random
sequences per condition by default; the campaign backend fans the
(system x sequence) cells out over worker processes with ``--jobs`` and
persists replayable per-run records with ``--out``.

Run with:  python examples/congestion_sweep.py [--sequences N] [--jobs N]
           [--out results/sweep.jsonl]

Replay a persisted sweep without re-simulating:

    python -m repro replay results/sweep.jsonl --figure fig5
"""

import argparse

from repro.experiments import run_fig5, run_fig6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sequences", type=int, default=2,
                        help="random sequences per condition (paper: 10)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the campaign backend")
    parser.add_argument("--out", default=None,
                        help="persist per-run JSONL records to this path")
    args = parser.parse_args()

    print(f"Running 6 systems x 4 conditions x {args.sequences} sequences "
          f"(20 apps each) over {args.jobs} worker(s) ...\n")
    fig5 = run_fig5(seed=1, sequence_count=args.sequences,
                    jobs=args.jobs, store=args.out)
    print(fig5.table())
    print()
    # Fig. 6 reuses Fig. 5's Standard/Stress/Real-time runs.
    fig6 = run_fig6(fig5_result=fig5)
    print(fig6.table())
    if args.out:
        print(f"\n{len(fig5.records)} records appended to {args.out} "
              f"(replay: python -m repro replay {args.out} --figure fig5)")


if __name__ == "__main__":
    main()
