#!/usr/bin/env python
"""3-in-1 bundling: utilization gains and the serial/parallel criterion.

Reproduces both panels of Fig. 7 from the synthesis tables, verifies the
gain on a live simulation with the time-weighted utilization tracker, and
demonstrates the runtime serial-vs-parallel bundling criterion
(``Tmax * (B + 2) > sum(T) * B``) across batch sizes.

Run with:  python examples/bundling_utilization.py
"""

from repro.apps import BENCHMARKS
from repro.core import parallel_time_ms, serial_preferred, serial_time_ms
from repro.experiments import run_fig7, run_fig7_dynamic
from repro.metrics import format_table


def main() -> None:
    print(run_fig7().table())

    print("\nLive verification (time-weighted occupied-slot utilization):")
    for name in ("IC", "3DR"):
        little, big = run_fig7_dynamic(name, batch_size=12)
        print(f"  {name:4s}: Little slots LUT={little.lut:.3f} -> "
              f"Big slots LUT={big.lut:.3f} "
              f"(+{(big.lut / little.lut - 1) * 100:.1f} %)")

    print("\nSerial vs parallel bundling (IC bundle 1, members "
          f"{BENCHMARKS['IC'].bundle_exec_times(BENCHMARKS['IC'].bundles[1])} ms):")
    times = BENCHMARKS["IC"].bundle_exec_times(BENCHMARKS["IC"].bundles[1])
    rows = []
    for batch in (1, 2, 3, 5, 10, 30):
        rows.append([
            batch,
            serial_time_ms(times, batch),
            parallel_time_ms(times, batch),
            "serial" if serial_preferred(times, batch) else "parallel",
        ])
    print(format_table(["batch", "serial (ms)", "parallel (ms)", "chosen"], rows))


if __name__ == "__main__":
    main()
