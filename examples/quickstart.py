#!/usr/bin/env python
"""Quickstart: share one Big.Little FPGA among three applications.

Builds a simulated ZCU216-class board in the Big.Little configuration
(2 Big + 4 Little slots), runs the VersaSlot scheduler (Algorithm 1
allocation, dual-core PR server, online 3-in-1 bundling) on three
benchmark applications, and prints per-application response times and the
scheduler's PR statistics.

Run with:  python examples/quickstart.py
"""

from repro import BoardConfig, Engine, FPGABoard
from repro.apps import ApplicationInstance, BENCHMARKS
from repro.core import VersaSlotBigLittle
from repro.metrics import format_table


def main() -> None:
    engine = Engine()
    board = FPGABoard(engine, BoardConfig.BIG_LITTLE, name="zcu216-0")
    scheduler = VersaSlotBigLittle(board)

    # Three applications arrive 200 ms apart with different batch sizes.
    def arrivals():
        for name, batch in (("IC", 16), ("3DR", 10), ("OF", 8)):
            scheduler.submit(ApplicationInstance(BENCHMARKS[name], batch, engine.now))
            yield engine.timeout(200.0)

    engine.process(arrivals())
    engine.run()

    rows = [
        [record.inst.spec.name, record.inst.batch_size,
         record.inst.arrival_time, record.response_ms]
        for record in scheduler.stats.responses
    ]
    print(format_table(
        ["app", "batch", "arrival (ms)", "response (ms)"], rows,
        title=f"VersaSlot Big.Little on {board.name}",
    ))
    stats = scheduler.stats
    print(f"\npartial reconfigurations: {stats.pr_count} "
          f"(blocked: {stats.pr_blocked}); "
          f"batch-item launches: {stats.launches} "
          f"(blocked by PR: {stats.launch_blocked})")
    print(f"PCAP busy time: {board.pcap.total_transfer_ms:.0f} ms "
          f"across {board.pcap.loads} loads")


if __name__ == "__main__":
    main()
